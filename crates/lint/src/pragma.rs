//! Inline suppression pragmas and fixture directives.
//!
//! A diagnostic is suppressed by a comment of the form
//!
//! ```text
//! // cardest-lint: allow(rule-id): reason the violation is legitimate
//! // cardest-lint: allow(rule-a, rule-b): one reason covering both
//! ```
//!
//! placed either on the offending line (trailing comment) or on a comment
//! line of its own immediately above it, in which case it applies to the
//! next line that contains code. The reason string is mandatory: an allow
//! without one, or one naming an unknown rule, is itself reported as a
//! `bad-pragma` diagnostic, so suppressions stay auditable.
//!
//! Fixture files under `crates/lint/fixtures/` carry a second directive,
//!
//! ```text
//! // cardest-lint-fixture: path=crates/nn/src/gemm.rs
//! ```
//!
//! which makes the linter scope the file as if it lived at that path, so
//! path-scoped rules (kernel hygiene, approved decode files) can be
//! exercised by self-tests without touching the real tree.

use crate::lexer::{Comment, Tok};

/// One parsed `allow` pragma, resolved to the source line it suppresses.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule ids named by the pragma.
    pub rules: Vec<String>,
    /// Line whose diagnostics the pragma suppresses.
    pub target_line: u32,
    /// Line the pragma comment itself starts on (for bad-pragma reports).
    pub pragma_line: u32,
    /// The mandatory justification; empty means the pragma is malformed.
    pub reason: String,
}

/// Pragmas and directives extracted from one file's comments.
#[derive(Debug, Default)]
pub struct Pragmas {
    pub allows: Vec<Allow>,
    /// `path=` override from a `cardest-lint-fixture:` directive.
    pub fixture_path: Option<String>,
    /// Comments that look like pragmas but failed to parse, with messages.
    pub malformed: Vec<(u32, String)>,
}

const PRAGMA_TAG: &str = "cardest-lint:";
const FIXTURE_TAG: &str = "cardest-lint-fixture:";

/// Extracts pragmas from `comments`, resolving each own-line pragma to the
/// next line of `toks` that carries code.
pub fn extract(comments: &[Comment], toks: &[Tok]) -> Pragmas {
    let mut out = Pragmas::default();
    for c in comments {
        let body = c.text.trim_start_matches(['/', '*', '!']).trim();
        if let Some(rest) = body.strip_prefix(FIXTURE_TAG) {
            parse_fixture_directive(rest.trim(), c, &mut out);
        } else if let Some(rest) = body.strip_prefix(PRAGMA_TAG) {
            parse_allow(rest.trim(), c, toks, &mut out);
        }
    }
    out
}

fn parse_fixture_directive(rest: &str, c: &Comment, out: &mut Pragmas) {
    if let Some(path) = rest.strip_prefix("path=") {
        let path = path.trim();
        if path.is_empty() {
            out.malformed
                .push((c.line, "fixture directive has an empty path".to_string()));
        } else {
            out.fixture_path = Some(path.to_string());
        }
    } else {
        out.malformed.push((
            c.line,
            format!("unknown fixture directive `{rest}` (expected `path=<repo path>`)"),
        ));
    }
}

fn parse_allow(rest: &str, c: &Comment, toks: &[Tok], out: &mut Pragmas) {
    let Some(args) = rest.strip_prefix("allow(") else {
        out.malformed.push((
            c.line,
            format!("unrecognized pragma `{rest}` (expected `allow(<rule>): <reason>`)"),
        ));
        return;
    };
    let Some(close) = args.find(')') else {
        out.malformed
            .push((c.line, "unclosed `allow(` pragma".to_string()));
        return;
    };
    let rules: Vec<String> = args[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        out.malformed
            .push((c.line, "allow() pragma names no rules".to_string()));
        return;
    }
    let after = args[close + 1..].trim();
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
    let target_line = if c.own_line {
        next_code_line(toks, c.end_line).unwrap_or(c.end_line)
    } else {
        c.line
    };
    out.allows.push(Allow {
        rules,
        target_line,
        pragma_line: c.line,
        reason: reason.to_string(),
    });
}

/// First line after `after` that carries a code token.
fn next_code_line(toks: &[Tok], after: u32) -> Option<u32> {
    toks.iter().map(|t| t.line).filter(|&l| l > after).min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn pragmas(src: &str) -> Pragmas {
        let l = lex(src);
        extract(&l.comments, &l.toks)
    }

    #[test]
    fn trailing_pragma_targets_its_own_line() {
        let src = "let x = v.unwrap(); // cardest-lint: allow(panic-path): invariant documented\n";
        let p = pragmas(src);
        assert_eq!(p.allows.len(), 1);
        assert_eq!(p.allows[0].target_line, 1);
        assert_eq!(p.allows[0].rules, vec!["panic-path"]);
        assert_eq!(p.allows[0].reason, "invariant documented");
    }

    #[test]
    fn own_line_pragma_targets_next_code_line() {
        let src = "\n// cardest-lint: allow(nondeterminism): keys are sorted\n// another comment\nuse std::collections::HashMap;\n";
        let p = pragmas(src);
        assert_eq!(p.allows.len(), 1);
        assert_eq!(p.allows[0].target_line, 4);
    }

    #[test]
    fn multi_rule_allow_and_missing_reason() {
        let src = "// cardest-lint: allow(a-rule, b-rule): shared reason\nlet x = 1;\n// cardest-lint: allow(c-rule)\nlet y = 2;\n";
        let p = pragmas(src);
        assert_eq!(p.allows.len(), 2);
        assert_eq!(p.allows[0].rules, vec!["a-rule", "b-rule"]);
        assert_eq!(p.allows[1].reason, "");
    }

    #[test]
    fn fixture_directive_and_malformed_pragmas() {
        let src = "// cardest-lint-fixture: path=crates/nn/src/gemm.rs\n// cardest-lint: allow()\n// cardest-lint: deny(x)\n";
        let p = pragmas(src);
        assert_eq!(p.fixture_path.as_deref(), Some("crates/nn/src/gemm.rs"));
        assert_eq!(p.malformed.len(), 2);
    }
}
