//! Semantic rules over the workspace call graph.
//!
//! Four cross-function invariants, each encoding a contract an earlier PR
//! established by hand:
//!
//! * [`SERVING_PANIC`] — nothing reachable from a serving entry point
//!   (`try_estimate*`, HTTP handlers, WAL recovery, replication session
//!   loops) may `unwrap`/`expect`/`panic!`/`assert!` or index without
//!   `get`; a panic there is a query-pipeline outage. Diagnostics carry a
//!   witness path (`route_request -> handle_estimate -> parse_body`).
//!   Sites under an `allow(panic-path)` pragma are documented invariant
//!   aborts and are exempt.
//! * [`LOCK_DISCIPLINE`] — per-function lock-acquisition summaries are
//!   propagated over call edges to catch inconsistent lock-order pairs
//!   (potential deadlock) and guards held across blocking operations
//!   (`join`, `send`/`recv`, socket I/O, `Condvar::wait` on a *different*
//!   lock's guard).
//! * [`DURABILITY`] — in `crates/store`, a function that writes durable
//!   files and returns `Result` must reach `sync_data`/`sync_all` or an
//!   atomic rename (directly or through a callee) before it can return an
//!   ack-carrying `Ok`.
//! * [`ERROR_TAXONOMY`] — serving-reachable functions return typed errors
//!   (no `Result<_, String>`, no `Box<dyn Error>`), and library targets
//!   never `process::exit` or print to stdout/stderr (bins are exempt).
//!
//! ## Known false-negative edges
//!
//! Name resolution is heuristic (no type inference). Locks are identified
//! by field name (`SelfTy.field` through `self`, bare field name through a
//! local), so the same lock reached through differently-named locals
//! unifies while two same-named fields on different types may alias.
//! Blocking socket I/O is recognized only when the receiver is named like
//! a stream (`stream`/`sock`/`conn`/`tcp`). Fact propagation stops at
//! call sites with more than [`FANOUT_CAP`] candidate targets, and — for
//! method-style calls, whose receiver type is unknown — at crate
//! boundaries, so one ambiguous method name cannot smear a fact across
//! the workspace. Reachability (which only widens a search) has neither
//! restriction.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{call_args_span, CallSite, CallStyle, Graph, SourceFile};
use crate::lexer::{Tok, TokKind};
use crate::parser::{brace_match, is_punct, paren_match};
use crate::rules::Diagnostic;

pub const SERVING_PANIC: &str = "serving-panic-reachability";
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
pub const DURABILITY: &str = "durability-protocol";
pub const ERROR_TAXONOMY: &str = "error-taxonomy";

/// `(id, summary)` for every semantic rule, mirroring the lexical
/// registry for `--list-rules` and the fixture agreement test.
pub fn semantic_registry() -> [(&'static str, &'static str); 4] {
    [
        (
            SERVING_PANIC,
            "no unwrap/expect/panic/assert/indexing reachable from serving entry points",
        ),
        (
            LOCK_DISCIPLINE,
            "consistent lock acquisition order; no guard held across blocking calls",
        ),
        (
            DURABILITY,
            "store writes must reach sync_data/sync_all or an atomic rename before Ok",
        ),
        (
            ERROR_TAXONOMY,
            "serving paths return typed errors; no stringly errors, exit(), or prints in libs",
        ),
    ]
}

pub fn is_semantic_rule(id: &str) -> bool {
    semantic_registry().iter().any(|(r, _)| *r == id)
}

/// Calls with more candidate targets than this do not propagate lock /
/// blocking / sync facts (reachability is exempt — see module docs).
const FANOUT_CAP: usize = 4;

/// Runs all semantic rules over the graph. Diagnostics are *not* yet
/// pragma-suppressed (the engine applies `allow` pragmas afterwards),
/// except for panic sites under `allow(panic-path)`, which are documented
/// invariant aborts and never enter the reachability rule at all.
pub fn check(graph: &Graph) -> Vec<Diagnostic> {
    let facts: Vec<Facts> = (0..graph.nodes.len())
        .map(|n| extract_facts(graph, n))
        .collect();
    let mut summaries: Vec<Option<Summary>> = vec![None; graph.nodes.len()];
    let mut on_stack = vec![false; graph.nodes.len()];
    for n in 0..graph.nodes.len() {
        summarize(graph, &facts, n, &mut summaries, &mut on_stack);
    }

    let entries: Vec<usize> = (0..graph.nodes.len())
        .filter(|&n| is_serving_entry(graph, n))
        .collect();
    let reach = graph.reachable_from(&entries);

    let mut diags = Vec::new();
    check_serving_panic(graph, &facts, &reach, &mut diags);
    check_lock_discipline(graph, &facts, &summaries, &mut diags);
    check_durability(graph, &facts, &summaries, &mut diags);
    check_error_taxonomy(graph, &facts, &reach, &mut diags);
    diags
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// The serving surface, by name pattern (documented in DESIGN.md §14):
/// estimation API, HTTP routing/handlers and server loops, and the store's
/// recovery / replication session paths.
fn is_serving_entry(graph: &Graph, n: usize) -> bool {
    let node = &graph.nodes[n];
    if node.is_test {
        return false;
    }
    let file = &graph.files[node.file];
    if file.is_bin() || file.is_testish() {
        return false;
    }
    let name = graph.item(n).name.as_str();
    if name.starts_with("try_estimate") {
        return true;
    }
    match file.crate_name() {
        Some("server") => {
            name == "route_request"
                || name.starts_with("handle_")
                || name.ends_with("_loop")
                || matches!(name, "run" | "submit" | "flush")
        }
        Some("store") => {
            matches!(
                name,
                "open" | "scan" | "serve_session" | "client_loop" | "run_session"
            ) || name.starts_with("recover")
                || name.starts_with("apply_record")
                || name.ends_with("_loop")
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Per-function facts
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Facts {
    /// Potential panic sites: `(line, kind)` where kind is one of
    /// `unwrap` / `expect` / `panic-macro` / `assert` / `index`.
    panics: Vec<(u32, &'static str)>,
    locks: Vec<LockAcq>,
    blocks: Vec<BlockSite>,
    /// Lines of durable-write operations.
    writes: Vec<u32>,
    /// A sync/rename durability op appears directly in this body.
    syncs: bool,
    /// `(line, macro name)` print sites.
    prints: Vec<(u32, String)>,
    /// `process::exit` call lines.
    exits: Vec<u32>,
}

#[derive(Debug)]
struct LockAcq {
    /// Heuristic lock identity (`SelfTy.field` or bare field name).
    id: String,
    line: u32,
    tok: usize,
    /// Variable the guard is bound to, when let-bound.
    guard: Option<String>,
    /// Last token index at which the guard is considered held.
    scope_end: usize,
}

#[derive(Debug)]
struct BlockSite {
    what: String,
    line: u32,
    tok: usize,
    /// For `Condvar::wait*`: the guard variable passed in (waiting on your
    /// own guard is the idiom, not a bug).
    wait_arg: Option<String>,
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const ASSERT_MACROS: [&str; 3] = ["assert", "assert_eq", "assert_ne"];
const PRINT_MACROS: [&str; 5] = ["println", "eprintln", "print", "eprint", "dbg"];
const WAIT_METHODS: [&str; 4] = ["wait", "wait_timeout", "wait_while", "wait_timeout_while"];
/// Blocking with no arguments (`handle.join()`, `rx.recv()`, ...). The
/// empty-argument requirement keeps `Path::join(..)` / `Vec::join(..)` out.
const BLOCKING_NOARG: [&str; 3] = ["join", "recv", "accept"];
const BLOCKING_ANYARG: [&str; 4] = ["send", "recv_timeout", "connect", "connect_timeout"];
const STREAM_IO: [&str; 7] = [
    "write_all",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "flush",
    "read",
    "write",
];
/// `reader`/`writer` are deliberately absent: buffered *file* readers are
/// conventionally named that way, and file I/O is not "blocking" in the
/// hold-a-guard sense this rule polices.
const STREAMISH: [&str; 4] = ["stream", "sock", "conn", "tcp"];
const FILEISH: [&str; 5] = ["file", "tmp", "wal", "seg", "out"];

fn extract_facts(graph: &Graph, n: usize) -> Facts {
    let mut f = Facts::default();
    let node = &graph.nodes[n];
    let file = &graph.files[node.file];
    let item = &file.items.fns[node.item];
    let Some((open, close)) = item.body else {
        return f;
    };
    let toks = &file.toks;
    let crate_name = file.crate_name().unwrap_or("");
    let server_or_store = crate_name == "server" || crate_name == "store";

    // Receivers whose length the function consults (`x.len()` or
    // `x.is_empty()` anywhere in the body). Indexing such a receiver is
    // assumed bounds-checked — the decode-loop idiom (`if buf.len() < 16
    // { break } ... buf[0..8]`) would otherwise drown the rule in noise.
    let mut len_aware: BTreeSet<&str> = BTreeSet::new();
    for k in open + 1..close {
        if toks[k].kind == TokKind::Ident
            && is_punct(toks, k + 1, ".")
            && toks.get(k + 2).is_some_and(|m| {
                m.kind == TokKind::Ident && (m.text == "len" || m.text == "is_empty")
            })
            && is_punct(toks, k + 3, "(")
        {
            len_aware.insert(toks[k].text.as_str());
        }
    }

    let mut j = open + 1;
    while j < close {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            // Indexing without `get`: `recv[..]` where `recv` is a value
            // whose length the function never consults.
            if server_or_store
                && t.text == "["
                && toks.get(j.wrapping_sub(1)).is_some_and(|p| {
                    p.kind == TokKind::Ident && !len_aware.contains(p.text.as_str())
                })
                && !panic_site_allowed(file, t.line)
            {
                f.panics.push((t.line, "index"));
            }
            j += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            j += 1;
            continue;
        }
        let name = t.text.as_str();
        let dot_recv = is_punct(toks, j.wrapping_sub(1), ".");
        let called = is_punct(toks, j + 1, "(");
        let noargs = called && is_punct(toks, j + 2, ")");
        let is_macro = is_punct(toks, j + 1, "!");

        // Panic sites.
        if dot_recv && called && (name == "unwrap" || name == "expect") {
            if !panic_site_allowed(file, t.line) {
                f.panics
                    .push((t.line, if name == "unwrap" { "unwrap" } else { "expect" }));
            }
        } else if is_macro && PANIC_MACROS.contains(&name) {
            if !panic_site_allowed(file, t.line) {
                f.panics.push((t.line, "panic-macro"));
            }
        } else if is_macro
            && server_or_store
            && ASSERT_MACROS.contains(&name)
            && !panic_site_allowed(file, t.line)
        {
            f.panics.push((t.line, "assert"));
        }

        // Lock acquisitions: `.lock()` always; `.read()` / `.write()` with
        // *empty* argument lists are RwLock (io::Read/Write always take a
        // buffer).
        if dot_recv && noargs && (name == "lock" || name == "read" || name == "write") {
            let chain = receiver_chain(toks, j);
            if let Some(id) = lock_id(&chain, item.self_ty.as_deref()) {
                let (guard, scope_end) = guard_scope(toks, j, open, close);
                f.locks.push(LockAcq {
                    id,
                    line: t.line,
                    tok: j,
                    guard,
                    scope_end,
                });
            }
        } else if dot_recv && called && WAIT_METHODS.contains(&name) {
            let wait_arg = call_args_span(toks, j).and_then(|(a_open, a_close)| {
                (a_open + 1..a_close)
                    .find(|&k| toks[k].kind == TokKind::Ident)
                    .map(|k| toks[k].text.clone())
            });
            f.blocks.push(BlockSite {
                what: format!("{name} on a condvar"),
                line: t.line,
                tok: j,
                wait_arg,
            });
        } else if dot_recv
            && ((noargs && BLOCKING_NOARG.contains(&name))
                || (called && BLOCKING_ANYARG.contains(&name)))
        {
            f.blocks.push(BlockSite {
                what: format!("`{name}`"),
                line: t.line,
                tok: j,
                wait_arg: None,
            });
        } else if name == "sleep" && called {
            f.blocks.push(BlockSite {
                what: "`sleep`".to_string(),
                line: t.line,
                tok: j,
                wait_arg: None,
            });
        } else if dot_recv && called && STREAM_IO.contains(&name) {
            let chain = receiver_chain(toks, j);
            if chain_matches(&chain, &STREAMISH) {
                f.blocks.push(BlockSite {
                    what: format!("socket `{name}`"),
                    line: t.line,
                    tok: j,
                    wait_arg: None,
                });
            } else if chain_matches(&chain, &FILEISH)
                && (name == "write_all" || (name == "write" && !noargs))
            {
                f.writes.push(t.line);
            }
        }

        // Durability ops and write ops, path style.
        if dot_recv && called && (name == "sync_data" || name == "sync_all") {
            f.syncs = true;
        }
        if name == "rename" && called {
            f.syncs = true; // fs::rename — the atomic-replace half of temp+rename
        }
        if dot_recv && called && name == "set_len" {
            let chain = receiver_chain(toks, j);
            if chain_matches(&chain, &FILEISH) {
                f.writes.push(t.line);
            }
        }
        if called && is_punct(toks, j.wrapping_sub(1), "::") {
            let qual = j
                .checked_sub(2)
                .and_then(|q| toks.get(q))
                .filter(|q| q.kind == TokKind::Ident)
                .map(|q| q.text.as_str())
                .unwrap_or("");
            if (qual == "fs" && (name == "write" || name == "copy"))
                || (qual == "File" && name == "create")
                || qual == "OpenOptions"
            {
                f.writes.push(t.line);
            }
            if qual == "process" && name == "exit" {
                f.exits.push(t.line);
            }
        }

        // Print macros.
        if is_macro && PRINT_MACROS.contains(&name) {
            f.prints.push((t.line, name.to_string()));
        }

        j += 1;
    }
    f
}

/// Panic sites carrying an `allow(panic-path)` or
/// `allow(serving-panic-reachability)` pragma are documented invariant
/// aborts; they are filtered at fact level so reachability never reports
/// them through a caller either.
fn panic_site_allowed(file: &SourceFile, line: u32) -> bool {
    file.allowed.get(&line).is_some_and(|rules| {
        rules
            .iter()
            .any(|r| r == "panic-path" || r == SERVING_PANIC)
    })
}

fn chain_matches(chain: &[String], pats: &[&str]) -> bool {
    chain.iter().any(|seg| {
        let seg = seg.to_ascii_lowercase();
        pats.iter().any(|p| seg.contains(p)) || seg == "f"
    })
}

/// Idents of the dotted receiver chain before the method name at
/// `method_tok`, outermost first (`self.inner.lock` → `[self, inner]`).
/// Call results in the chain (`self.state().lock()`) contribute the
/// callee's name.
fn receiver_chain(toks: &[Tok], method_tok: usize) -> Vec<String> {
    let mut chain: Vec<String> = Vec::new();
    let Some(mut k) = method_tok.checked_sub(1) else {
        return chain;
    };
    if !is_punct(toks, k, ".") {
        return chain;
    }
    while let Some(prev) = k.checked_sub(1) {
        let t = &toks[prev];
        if t.kind == TokKind::Ident {
            chain.push(t.text.clone());
            match prev.checked_sub(1) {
                Some(pp) if is_punct(toks, pp, ".") => k = pp,
                _ => break,
            }
        } else if t.kind == TokKind::Punct && (t.text == ")" || t.text == "]") {
            let open_text = if t.text == ")" { "(" } else { "[" };
            let Some(open) = back_match(toks, prev, open_text, &t.text) else {
                break;
            };
            match open.checked_sub(1) {
                Some(name_idx) if toks[name_idx].kind == TokKind::Ident => {
                    chain.push(toks[name_idx].text.clone());
                    match name_idx.checked_sub(1) {
                        Some(pp) if is_punct(toks, pp, ".") => k = pp,
                        _ => break,
                    }
                }
                _ => break,
            }
        } else {
            break;
        }
    }
    chain.reverse();
    chain
}

/// Index of the opening delimiter matching the closer at `close_idx`,
/// scanning backwards.
fn back_match(toks: &[Tok], close_idx: usize, op: &str, cl: &str) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = close_idx;
    loop {
        if is_punct(toks, i, cl) {
            depth += 1;
        } else if is_punct(toks, i, op) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i = i.checked_sub(1)?;
    }
}

/// Heuristic lock identity: `SelfTy.field` when reached through `self`,
/// the field name alone when reached through a local binding.
fn lock_id(chain: &[String], self_ty: Option<&str>) -> Option<String> {
    let first = chain.first()?;
    if first == "self" {
        let ty = self_ty.unwrap_or("Self");
        if chain.len() == 1 {
            Some(ty.to_string())
        } else {
            Some(format!("{ty}.{}", chain[chain.len() - 1]))
        }
    } else {
        Some(chain[chain.len() - 1].clone())
    }
}

/// True when the lock-acquisition chain starting at the method ident `at`
/// — `lock(..)` plus any `.unwrap()` / `.expect(..)` /
/// `.unwrap_or_else(..)` adapters — is immediately followed by `;`, i.e.
/// the statement's value *is* the guard.
fn acquisition_ends_statement(toks: &[Tok], at: usize) -> bool {
    if !is_punct(toks, at + 1, "(") {
        return false;
    }
    let mut j = paren_match(toks, at + 1);
    while is_punct(toks, j + 1, ".")
        && toks.get(j + 2).is_some_and(|t| {
            t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "unwrap" | "expect" | "unwrap_or_else")
        })
        && is_punct(toks, j + 3, "(")
    {
        j = paren_match(toks, j + 3);
    }
    is_punct(toks, j + 1, ";")
}

/// Determines the guard binding and held-scope of a lock acquired at token
/// `at`, per the rules in DESIGN.md §14:
///
/// * let-bound guards live to the end of the enclosing block, or to an
///   explicit `drop(<guard>)`;
/// * temporaries in a `for`/`while`/`if`/`match` header live to the end of
///   the construct's body (Rust extends header temporaries);
/// * other temporaries live to the end of their statement.
fn guard_scope(
    toks: &[Tok],
    at: usize,
    body_open: usize,
    body_close: usize,
) -> (Option<String>, usize) {
    // Find the statement start: scan back to the nearest `;`, `{`, `}`,
    // or `=>` (match arms), bounded by the body.
    let mut stmt = at;
    while stmt > body_open + 1 {
        let p = &toks[stmt - 1];
        if p.kind == TokKind::Punct && matches!(p.text.as_str(), ";" | "{" | "}" | "=>") {
            break;
        }
        stmt -= 1;
    }
    // Let-bound? Pick the first pattern ident after `let` as the guard
    // name (tuple patterns from `wait_timeout` bind the guard first). A
    // `let` only binds the *guard* when the acquisition chain ends the
    // statement (`let g = m.lock().unwrap();`); if the chain projects
    // further (`let v = m.lock().unwrap().take();`) the guard is a
    // temporary dropped at the `;` and the binding holds the projection.
    let mut guard: Option<String> = None;
    if acquisition_ends_statement(toks, at) {
        let mut k = stmt;
        while k < at {
            if toks[k].kind == TokKind::Ident && toks[k].text == "let" {
                let mut g = k + 1;
                while g < at {
                    let t = &toks[g];
                    if t.kind == TokKind::Ident && t.text != "mut" {
                        guard = Some(t.text.clone());
                        break;
                    }
                    g += 1;
                }
                break;
            }
            k += 1;
        }
    }

    if guard.is_some() {
        // To the end of the enclosing block, or an explicit drop(<guard>).
        let gname = guard.as_deref().unwrap_or("");
        let mut depth = 0i32;
        let mut i = at;
        while i < body_close {
            let t = &toks[i];
            if t.kind == TokKind::Punct {
                if t.text == "{" {
                    depth += 1;
                } else if t.text == "}" {
                    depth -= 1;
                    if depth < 0 {
                        return (guard, i);
                    }
                }
            } else if t.kind == TokKind::Ident
                && t.text == "drop"
                && is_punct(toks, i + 1, "(")
                && toks
                    .get(i + 2)
                    .is_some_and(|a| a.kind == TokKind::Ident && a.text == gname)
                && is_punct(toks, i + 3, ")")
            {
                return (guard, i);
            }
            i += 1;
        }
        return (guard, body_close);
    }

    // Header temporary? The statement's first ident decides.
    let header = toks
        .get(stmt)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str());
    if matches!(header, Some("for" | "while" | "if" | "match")) {
        // Held to the end of the construct's body block.
        let mut paren = 0i32;
        let mut i = at;
        while i < body_close {
            let t = &toks[i];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "{" if paren <= 0 => return (None, brace_match(toks, i).min(body_close)),
                    _ => {}
                }
            }
            i += 1;
        }
        return (None, body_close);
    }

    // Plain temporary: to the end of this statement.
    let mut depth = 0i32;
    let mut i = at;
    while i < body_close {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return (None, i);
                    }
                }
                ";" if depth <= 0 => return (None, i),
                _ => {}
            }
        }
        i += 1;
    }
    (None, body_close)
}

// ---------------------------------------------------------------------------
// Transitive summaries
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct Summary {
    /// Lock ids this function (or a capped-fan-out callee) may acquire.
    locks: BTreeSet<String>,
    /// A blocking operation reachable here, if any (description).
    may_block: Option<String>,
    /// Some path performs a sync/rename durability op.
    syncs: bool,
}

/// Targets a call site may carry *facts* (locks, blocking, syncs) through.
/// Empty when the fan-out cap is exceeded, and — for method-style calls,
/// whose receiver type is unknown — restricted to the caller's own crate:
/// a `.shutdown()` on a `TcpStream` in `store` must not inherit the
/// thread-join inside some unrelated `fn shutdown` in `server`.
/// Path-qualified and bare calls resolve well enough to cross crates.
fn fact_targets(graph: &Graph, n: usize, call: &CallSite) -> Vec<usize> {
    if call.targets.is_empty() || call.targets.len() > FANOUT_CAP {
        return Vec::new();
    }
    let caller_crate = graph.files[graph.nodes[n].file].crate_name();
    call.targets
        .iter()
        .copied()
        .filter(|&t| {
            !matches!(call.style, CallStyle::Method)
                || graph.files[graph.nodes[t].file].crate_name() == caller_crate
        })
        .collect()
}

fn summarize(
    graph: &Graph,
    facts: &[Facts],
    n: usize,
    memo: &mut Vec<Option<Summary>>,
    on_stack: &mut Vec<bool>,
) -> Summary {
    if let Some(s) = &memo[n] {
        return s.clone();
    }
    if on_stack[n] {
        return Summary::default(); // cycle: cut with the empty summary
    }
    on_stack[n] = true;
    let mut s = Summary {
        locks: facts[n].locks.iter().map(|l| l.id.clone()).collect(),
        may_block: facts[n].blocks.first().map(|b| b.what.clone()),
        syncs: facts[n].syncs,
    };
    for call in &graph.nodes[n].calls {
        for t in fact_targets(graph, n, call) {
            let sub = summarize(graph, facts, t, memo, on_stack);
            s.locks.extend(sub.locks.iter().cloned());
            if s.may_block.is_none() {
                if let Some(b) = &sub.may_block {
                    s.may_block = Some(format!("{} via `{}`", b, call.name));
                }
            }
            s.syncs |= sub.syncs;
        }
    }
    on_stack[n] = false;
    memo[n] = Some(s.clone());
    s
}

// ---------------------------------------------------------------------------
// Rule: serving-panic-reachability
// ---------------------------------------------------------------------------

fn check_serving_panic(
    graph: &Graph,
    facts: &[Facts],
    reach: &BTreeMap<usize, Option<(usize, u32)>>,
    out: &mut Vec<Diagnostic>,
) {
    for &n in reach.keys() {
        for &(line, kind) in &facts[n].panics {
            let file = &graph.files[graph.nodes[n].file];
            out.push(Diagnostic {
                file: file.display.clone(),
                line,
                rule: SERVING_PANIC,
                function: graph.qual(n).to_string(),
                kind: kind.to_string(),
                message: format!(
                    "{} in `{}` is reachable from a serving entry point ({}); serving paths \
                     must degrade with a typed error, not abort",
                    panic_kind_desc(kind),
                    graph.qual(n),
                    graph.witness(reach, n),
                ),
            });
        }
    }
}

fn panic_kind_desc(kind: &str) -> &'static str {
    match kind {
        "unwrap" => "`unwrap()`",
        "expect" => "`expect()`",
        "panic-macro" => "a panicking macro",
        "assert" => "an assertion",
        _ => "indexing without `get`",
    }
}

// ---------------------------------------------------------------------------
// Rule: lock-discipline
// ---------------------------------------------------------------------------

fn check_lock_discipline(
    graph: &Graph,
    facts: &[Facts],
    summaries: &[Option<Summary>],
    out: &mut Vec<Diagnostic>,
) {
    // (first, second) -> sites where that acquisition order was observed.
    type OrderSites = BTreeMap<(String, String), Vec<(usize, u32, String)>>;
    let mut pairs: OrderSites = BTreeMap::new();

    for (n, nf) in facts.iter().enumerate() {
        if graph.nodes[n].is_test {
            continue;
        }
        let file = &graph.files[graph.nodes[n].file];
        for a in &nf.locks {
            // Nested direct acquisitions.
            for b in &nf.locks {
                if b.tok > a.tok && b.tok <= a.scope_end && b.id != a.id {
                    pairs
                        .entry((a.id.clone(), b.id.clone()))
                        .or_default()
                        .push((n, b.line, format!("`{}` then `{}`", a.id, b.id)));
                }
            }
            // Direct blocking sites inside the guard's scope.
            for blk in &nf.blocks {
                if blk.tok <= a.tok || blk.tok > a.scope_end {
                    continue;
                }
                if blk.wait_arg.is_some() && blk.wait_arg == a.guard {
                    continue; // waiting on your own guard is the condvar idiom
                }
                out.push(Diagnostic {
                    file: file.display.clone(),
                    line: blk.line,
                    rule: LOCK_DISCIPLINE,
                    function: graph.qual(n).to_string(),
                    kind: "guard-across-blocking".to_string(),
                    message: format!(
                        "guard on `{}` (acquired line {}) is held across blocking {}; drop \
                         the guard before blocking",
                        a.id, a.line, blk.what
                    ),
                });
            }
            // Propagated facts through calls inside the scope.
            for call in &graph.nodes[n].calls {
                if call.tok <= a.tok || call.tok > a.scope_end {
                    continue;
                }
                let mut merged = Summary::default();
                for t in fact_targets(graph, n, call) {
                    if let Some(s) = &summaries[t] {
                        merged.locks.extend(s.locks.iter().cloned());
                        if merged.may_block.is_none() {
                            merged.may_block.clone_from(&s.may_block);
                        }
                    }
                }
                for x in &merged.locks {
                    if *x != a.id {
                        pairs.entry((a.id.clone(), x.clone())).or_default().push((
                            n,
                            call.line,
                            format!("`{}` then `{}` via call to `{}`", a.id, x, call.name),
                        ));
                    }
                }
                if let Some(b) = &merged.may_block {
                    out.push(Diagnostic {
                        file: file.display.clone(),
                        line: call.line,
                        rule: LOCK_DISCIPLINE,
                        function: graph.qual(n).to_string(),
                        kind: "guard-across-blocking".to_string(),
                        message: format!(
                            "guard on `{}` (acquired line {}) is held across a call to \
                             `{}`, which may block ({})",
                            a.id, a.line, call.name, b
                        ),
                    });
                }
            }
        }
    }

    // Inconsistent order: both (A, B) and (B, A) observed.
    let keys: Vec<(String, String)> = pairs.keys().cloned().collect();
    for (x, y) in keys {
        if x >= y {
            continue;
        }
        let fwd = pairs.get(&(x.clone(), y.clone()));
        let rev = pairs.get(&(y.clone(), x.clone()));
        if let (Some(fwd), Some(rev)) = (fwd, rev) {
            for (here, there) in [(&fwd[0], &rev[0]), (&rev[0], &fwd[0])] {
                let (n, line, how) = here;
                let (on, oline, _) = there;
                let file = &graph.files[graph.nodes[*n].file];
                let ofile = &graph.files[graph.nodes[*on].file];
                out.push(Diagnostic {
                    file: file.display.clone(),
                    line: *line,
                    rule: LOCK_DISCIPLINE,
                    function: graph.qual(*n).to_string(),
                    kind: "order-inversion".to_string(),
                    message: format!(
                        "lock order inversion: {} here, but the opposite order in `{}` \
                         ({}:{}) — potential deadlock",
                        how,
                        graph.qual(*on),
                        ofile.display,
                        oline
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: durability-protocol
// ---------------------------------------------------------------------------

fn check_durability(
    graph: &Graph,
    facts: &[Facts],
    summaries: &[Option<Summary>],
    out: &mut Vec<Diagnostic>,
) {
    for n in 0..graph.nodes.len() {
        if graph.nodes[n].is_test {
            continue;
        }
        let file = &graph.files[graph.nodes[n].file];
        if file.crate_name() != Some("store") || file.is_testish() || file.is_bin() {
            continue;
        }
        let Some(&first_write) = facts[n].writes.first() else {
            continue;
        };
        let item = graph.item(n);
        if !item.ret.iter().any(|t| t == "Result") {
            continue; // not an ack-carrying function
        }
        let synced = facts[n].syncs || summaries[n].as_ref().is_some_and(|s| s.syncs);
        if synced {
            continue;
        }
        out.push(Diagnostic {
            file: file.display.clone(),
            line: first_write,
            rule: DURABILITY,
            function: item.qual.clone(),
            kind: "write-without-sync".to_string(),
            message: format!(
                "`{}` writes durable state but no path reaches sync_data/sync_all or an \
                 atomic rename before returning Ok; an ack must imply durability",
                item.qual
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule: error-taxonomy
// ---------------------------------------------------------------------------

fn check_error_taxonomy(
    graph: &Graph,
    facts: &[Facts],
    reach: &BTreeMap<usize, Option<(usize, u32)>>,
    out: &mut Vec<Diagnostic>,
) {
    // Return-type discipline on the serving surface.
    for &n in reach.keys() {
        let file = &graph.files[graph.nodes[n].file];
        if file.is_bin() || file.crate_name() == Some("bench") {
            continue;
        }
        let item = graph.item(n);
        if let Some((kind, desc)) = err_ret_kind(&item.ret) {
            out.push(Diagnostic {
                file: file.display.clone(),
                line: item.line,
                rule: ERROR_TAXONOMY,
                function: item.qual.clone(),
                kind: kind.to_string(),
                message: format!(
                    "serving-path function `{}` returns {}; use a typed error enum so \
                     callers can branch on failure modes",
                    item.qual, desc
                ),
            });
        }
    }
    // Library hygiene everywhere: no exit(), no prints outside bins.
    for (n, nf) in facts.iter().enumerate() {
        if graph.nodes[n].is_test {
            continue;
        }
        let file = &graph.files[graph.nodes[n].file];
        if file.is_bin() || file.is_testish() || file.crate_name() == Some("bench") {
            continue;
        }
        let qual = graph.qual(n);
        for &line in &nf.exits {
            out.push(Diagnostic {
                file: file.display.clone(),
                line,
                rule: ERROR_TAXONOMY,
                function: qual.to_string(),
                kind: "process-exit".to_string(),
                message: format!(
                    "`process::exit` in library function `{qual}` kills the host process; \
                     return an error and let the bin decide"
                ),
            });
        }
        for (line, mac) in &nf.prints {
            out.push(Diagnostic {
                file: file.display.clone(),
                line: *line,
                rule: ERROR_TAXONOMY,
                function: qual.to_string(),
                kind: "stdout-in-lib".to_string(),
                message: format!(
                    "`{mac}!` in library function `{qual}` writes to the process's \
                     stdio; surface information through return values (bins are exempt)"
                ),
            });
        }
    }
}

/// Classifies an offending error channel in a return type, if any.
fn err_ret_kind(ret: &[String]) -> Option<(&'static str, &'static str)> {
    // `Box<dyn ... Error ...>` anywhere in the type.
    let has = |s: &str| ret.iter().any(|t| t == s);
    if has("Box") && has("dyn") && has("Error") {
        return Some(("boxed-dyn-error", "a `Box<dyn Error>`"));
    }
    // `Result<_, E>`: inspect E.
    let r = ret.iter().position(|t| t == "Result")?;
    if ret.get(r + 1).map(String::as_str) != Some("<") {
        return None;
    }
    let mut depth = 0i32;
    let mut comma: Option<usize> = None;
    let mut end = ret.len();
    for (i, t) in ret.iter().enumerate().skip(r + 1) {
        match t.as_str() {
            "<" | "(" | "[" => depth += 1,
            ">" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    break;
                }
            }
            "," if depth == 1 && comma.is_none() => comma = Some(i),
            _ => {}
        }
    }
    let err = &ret[comma? + 1..end];
    if err == ["String"] || err.last().map(String::as_str) == Some("str") {
        return Some(("stringly-error", "a stringly error (`Result<_, String>`)"));
    }
    if err.contains(&"dyn".to_string()) && err.contains(&"Error".to_string()) {
        return Some(("boxed-dyn-error", "a `Box<dyn Error>`"));
    }
    None
}
