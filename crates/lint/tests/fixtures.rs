//! Fixture-driven self-tests: every rule has one must-fire and one
//! must-not-fire fixture under `crates/lint/fixtures/`. Fixtures carry a
//! `cardest-lint-fixture: path=` directive so path-scoped rules see them
//! as if they lived in the real tree, and they are excluded from
//! directory walks so the workspace gate stays clean.

use std::path::PathBuf;
use std::process::Command;

use cardest_lint::{lint_source, lint_sources_semantic, rules, semrules};

const RULES: [&str; 7] = [
    "nondeterminism",
    "raw-exp-decode",
    "float-total-order",
    "panic-path",
    "unsafe-block",
    "kernel-hygiene",
    "bad-pragma",
];

/// Semantic rules, exercised by fixture pairs under `fixtures/sem/`.
const SEM_RULES: [&str; 4] = [
    "serving-panic-reachability",
    "lock-discipline",
    "durability-protocol",
    "error-taxonomy",
];

fn fixture(name: &str) -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    (path.to_string_lossy().replace('\\', "/"), src)
}

#[test]
fn every_rule_has_a_firing_fixture() {
    for rule in RULES {
        let (path, src) = fixture(&format!("{rule}_fire.rs"));
        let report = lint_source(&path, &src);
        assert!(
            report.diagnostics.iter().any(|d| d.rule == rule),
            "{rule}_fire.rs did not fire `{rule}`; got {:?}",
            report.diagnostics
        );
    }
}

#[test]
fn every_rule_has_a_non_firing_fixture() {
    for rule in RULES {
        let (path, src) = fixture(&format!("{rule}_clean.rs"));
        let report = lint_source(&path, &src);
        assert!(
            report.is_clean(),
            "{rule}_clean.rs should be clean; got {:?}",
            report.diagnostics
        );
    }
}

#[test]
fn fire_fixtures_report_the_expected_sites() {
    // Spot-check line anchoring, not just rule presence.
    let (path, src) = fixture("nondeterminism_fire.rs");
    let report = lint_source(&path, &src);
    let lines: Vec<u32> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "nondeterminism")
        .map(|d| d.line)
        .collect();
    // SystemTime::now, Instant::now, thread_rng, HashMap (use + ctor +
    // type), HashSet (use + ctor + type) all fire.
    assert!(lines.len() >= 6, "expected >=6 sites, got {lines:?}");

    let (path, src) = fixture("kernel-hygiene_fire.rs");
    let report = lint_source(&path, &src);
    assert_eq!(
        report
            .diagnostics
            .iter()
            .filter(|d| d.rule == "kernel-hygiene")
            .count(),
        3,
        "three casts in the fixture: {:?}",
        report.diagnostics
    );
}

fn sem_fixture(name: &str) -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("sem")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    (path.to_string_lossy().replace('\\', "/"), src)
}

#[test]
fn every_semantic_rule_has_a_firing_fixture() {
    for rule in SEM_RULES {
        let (path, src) = sem_fixture(&format!("{rule}_fire.rs"));
        let report = lint_sources_semantic(&[(path, src)]);
        assert!(
            report.diagnostics.iter().any(|d| d.rule == rule),
            "{rule}_fire.rs did not fire `{rule}`; got {:?}",
            report.diagnostics
        );
    }
}

#[test]
fn every_semantic_rule_has_a_non_firing_fixture() {
    for rule in SEM_RULES {
        let (path, src) = sem_fixture(&format!("{rule}_clean.rs"));
        let report = lint_sources_semantic(&[(path, src)]);
        assert!(
            report.is_clean(),
            "{rule}_clean.rs should be semantically clean; got {:?}",
            report.diagnostics
        );
    }
}

#[test]
fn serving_panic_diagnostics_carry_the_witness_path() {
    let (path, src) = sem_fixture("serving-panic-reachability_fire.rs");
    let report = lint_sources_semantic(&[(path, src)]);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "serving-panic-reachability")
        .expect("rule fired");
    assert!(
        d.message.contains("handle_estimate -> decode -> parse_len"),
        "witness path missing from: {}",
        d.message
    );
    assert_eq!(d.function, "parse_len");
    assert_eq!(d.kind, "unwrap");
}

#[test]
fn lock_fixture_fires_both_inversion_and_guard_across_blocking() {
    let (path, src) = sem_fixture("lock-discipline_fire.rs");
    let report = lint_sources_semantic(&[(path, src)]);
    let kinds: Vec<&str> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "lock-discipline")
        .map(|d| d.kind.as_str())
        .collect();
    assert!(
        kinds.contains(&"order-inversion"),
        "no order-inversion in {kinds:?}"
    );
    assert!(
        kinds.contains(&"guard-across-blocking"),
        "no guard-across-blocking in {kinds:?}"
    );
}

#[test]
fn semantic_registry_and_fixture_list_agree() {
    let mut registered: Vec<&str> = semrules::semantic_registry()
        .iter()
        .map(|(id, _)| *id)
        .collect();
    registered.sort_unstable();
    let mut covered = SEM_RULES.to_vec();
    covered.sort_unstable();
    assert_eq!(registered, covered);
}

#[test]
fn cli_semantic_flag_exits_nonzero_on_a_semantic_fixture() {
    let bin = env!("CARGO_BIN_EXE_cardest-lint");
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("sem");
    let out = Command::new(bin)
        .arg("--semantic")
        .arg("--format=json")
        .arg(dir.join("durability-protocol_fire.rs"))
        .output()
        .expect("run cardest-lint");
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"rule\":\"durability-protocol\""), "{json}");
    assert!(json.contains("\"function\":\"save_segment\""), "{json}");
}

#[test]
fn registry_and_fixture_list_agree() {
    // Every registered rule (plus the bad-pragma meta-rule) is exercised
    // by this suite; a new rule without fixtures fails here.
    let mut registered: Vec<&str> = rules::registry().iter().map(|r| r.id).collect();
    registered.push(rules::BAD_PRAGMA);
    registered.sort_unstable();
    let mut covered = RULES.to_vec();
    covered.sort_unstable();
    assert_eq!(registered, covered);
}

#[test]
fn cli_exits_nonzero_on_fire_fixtures_and_zero_on_clean() {
    let bin = env!("CARGO_BIN_EXE_cardest-lint");
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    for rule in RULES {
        let fire = Command::new(bin)
            .arg(dir.join(format!("{rule}_fire.rs")))
            .output()
            .expect("run cardest-lint");
        assert_eq!(
            fire.status.code(),
            Some(1),
            "{rule}_fire.rs should exit 1: {}",
            String::from_utf8_lossy(&fire.stdout)
        );
        let clean = Command::new(bin)
            .arg(dir.join(format!("{rule}_clean.rs")))
            .output()
            .expect("run cardest-lint");
        assert_eq!(
            clean.status.code(),
            Some(0),
            "{rule}_clean.rs should exit 0: {}",
            String::from_utf8_lossy(&clean.stdout)
        );
    }
}

#[test]
fn cli_json_output_is_machine_readable() {
    let bin = env!("CARGO_BIN_EXE_cardest-lint");
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let out = Command::new(bin)
        .arg("--format=json")
        .arg(dir.join("panic-path_fire.rs"))
        .output()
        .expect("run cardest-lint");
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.starts_with("{\"files_scanned\":1"));
    assert!(json.contains("\"rule\":\"panic-path\""));
    assert!(json.contains("\"line\":"));
    assert!(json.trim_end().ends_with("]}"));
}
