//! The meta-gate: linting the live workspace from inside `cargo test`
//! must report zero non-allowed diagnostics, so the determinism /
//! numerics / panic-safety contracts are enforced even for contributors
//! who never run `ci.sh`.

use std::path::PathBuf;

use cardest_lint::lint_paths;

fn crates_dir() -> PathBuf {
    // crates/lint -> crates
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(PathBuf::from)
        .unwrap_or_default()
}

#[test]
fn live_workspace_has_zero_non_allowed_diagnostics() {
    let report = lint_paths(&[crates_dir()]).expect("lint the crates tree");
    assert!(
        report.diagnostics.is_empty(),
        "cardest-lint found violations in the live workspace:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| format!("  {}:{}: [{}] {}", d.file, d.line, d.rule, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_walk_actually_covers_the_workspace() {
    // Guard against a silent no-op gate (wrong directory, over-eager
    // skip list): the walk must see every crate's sources.
    let report = lint_paths(&[crates_dir()]).expect("lint the crates tree");
    assert!(
        report.files_scanned >= 50,
        "only {} files scanned — walker is skipping too much",
        report.files_scanned
    );
    // The ~44 documented allows (panic invariants, exact-zero compares,
    // VAE exp math, LSH ordering) must all still be load-bearing.
    assert!(
        report.allows_used >= 30,
        "only {} allow pragmas in effect — pragmas and violations drifted apart",
        report.allows_used
    );
}
