//! The meta-gate: linting the live workspace from inside `cargo test`
//! must report zero non-allowed diagnostics, so the determinism /
//! numerics / panic-safety contracts are enforced even for contributors
//! who never run `ci.sh`.

use std::path::PathBuf;

use cardest_lint::baseline::Baseline;
use cardest_lint::{lint_paths, lint_paths_semantic, lint_sources_semantic};

fn crates_dir() -> PathBuf {
    // crates/lint -> crates
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(PathBuf::from)
        .unwrap_or_default()
}

#[test]
fn live_workspace_has_zero_non_allowed_diagnostics() {
    let report = lint_paths(&[crates_dir()]).expect("lint the crates tree");
    assert!(
        report.diagnostics.is_empty(),
        "cardest-lint found violations in the live workspace:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| format!("  {}:{}: [{}] {}", d.file, d.line, d.rule, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_walk_actually_covers_the_workspace() {
    // Guard against a silent no-op gate (wrong directory, over-eager
    // skip list): the walk must see every crate's sources.
    let report = lint_paths(&[crates_dir()]).expect("lint the crates tree");
    assert!(
        report.files_scanned >= 50,
        "only {} files scanned — walker is skipping too much",
        report.files_scanned
    );
    // The ~44 documented allows (panic invariants, exact-zero compares,
    // VAE exp math, LSH ordering) must all still be load-bearing.
    assert!(
        report.allows_used >= 30,
        "only {} allow pragmas in effect — pragmas and violations drifted apart",
        report.allows_used
    );
}

fn checked_in_baseline() -> Baseline {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("baseline.txt");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
    Baseline::parse(&text).expect("parse checked-in baseline")
}

#[test]
fn live_workspace_is_semantically_clean_modulo_baseline() {
    let mut report = lint_paths_semantic(&[crates_dir()]).expect("semantic pass");
    checked_in_baseline().apply(&mut report);
    assert!(
        report.diagnostics.is_empty(),
        "semantic pass found non-baselined violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| format!(
                "  {}:{}: [{}] in `{}`: {}",
                d.file, d.line, d.rule, d.function, d.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The baseline must not rot: every entry it accepts must still match
    // a real diagnostic, or stale entries would mask future violations.
    assert!(
        report.baseline_suppressed >= 20,
        "only {} diagnostics baselined — baseline.txt has gone stale; regenerate it",
        report.baseline_suppressed
    );
}

/// The negative control for the whole semantic pipeline: splice an
/// `unwrap()` into a real serving-path function in the real server source
/// and assert the pass catches it as a *new*, non-baselined diagnostic.
/// If entry-point detection, call-graph resolution, reachability, pragma
/// scoping, or baseline keying ever regress into silence, this fails.
#[test]
fn a_seeded_unwrap_in_a_serving_path_is_caught() {
    let crates = crates_dir();
    let mut sources = Vec::new();
    let mut stack = vec![crates.clone()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("walk crates") {
            let path = entry.expect("dir entry").path();
            let name = path.file_name().unwrap_or_default().to_string_lossy();
            if path.is_dir() {
                if name != "target" && name != "fixtures" && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let src = std::fs::read_to_string(&path).expect("read source");
                sources.push((path.to_string_lossy().replace('\\', "/"), src));
            }
        }
    }

    // Seed the bug at the top of `route_request`'s body in the real
    // server source.
    let server = sources
        .iter_mut()
        .find(|(p, _)| p.ends_with("crates/server/src/server.rs"))
        .expect("server.rs present");
    let needle = "fn route_request(";
    let at = server.1.find(needle).expect("route_request exists");
    let body_open = server.1[at..].find('{').map(|o| at + o + 1).expect("body");
    server.1.insert_str(
        body_open,
        "\n    let _seeded: Option<u32> = None;\n    let _ = _seeded.unwrap();\n",
    );

    let mut report = lint_sources_semantic(&sources);
    checked_in_baseline().apply(&mut report);
    let caught = report.diagnostics.iter().any(|d| {
        d.rule == "serving-panic-reachability"
            && d.kind == "unwrap"
            && d.file.ends_with("crates/server/src/server.rs")
            && d.function == "route_request"
    });
    assert!(
        caught,
        "seeded unwrap in route_request was not caught; got: {:?}",
        report.diagnostics
    );
}
