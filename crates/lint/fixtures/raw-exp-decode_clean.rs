// cardest-lint-fixture: path=crates/core/src/gl.rs
//! Must-not-fire fixture: decodes routed through the shared clamp helper,
//! plus test-only exp.

pub fn decode(o: f32, cap: f32) -> f32 {
    decode_log_card(o, cap)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exp_in_tests_is_allowed() {
        assert!((1.0f32).exp() > 2.7);
    }
}
