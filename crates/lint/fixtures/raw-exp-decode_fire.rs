// cardest-lint-fixture: path=crates/core/src/gl.rs
//! Must-fire fixture: a bare model-output decode.

pub fn decode(o: f32, cap: f32) -> f32 {
    o.exp().min(cap)
}
