// cardest-lint-fixture: path=crates/data/src/cache.rs
//! Must-fire fixture: every panic path the rule bans.

pub fn explode(v: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = v.unwrap();
    let b = r.expect("gone");
    if a > b {
        panic!("boom");
    }
    match a {
        0 => unreachable!(),
        1 => todo!(),
        _ => unimplemented!(),
    }
}
