// cardest-lint-fixture: path=crates/nn/src/parallel.rs
//! Must-not-fire fixture: seeded RNGs, ordered containers, and test-only
//! clocks are all fine.

use std::collections::BTreeMap;

pub fn seeded(seed: u64) -> u64 {
    let rng = StdRng::seed_from_u64(seed);
    let m: BTreeMap<u64, u64> = BTreeMap::new();
    // Banned names inside strings and comments never fire: thread_rng,
    // SystemTime::now, HashMap.
    let s = "SystemTime::now() HashMap thread_rng";
    m.len() as u64 + s.len() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_allowed() {
        let _ = std::time::Instant::now();
    }
}
