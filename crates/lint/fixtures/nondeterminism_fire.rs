// cardest-lint-fixture: path=crates/nn/src/parallel.rs
//! Must-fire fixture: every nondeterminism source the rule bans.

use std::collections::{HashMap, HashSet};
use std::time::{Instant, SystemTime};

pub fn wall_clock_seed() -> u64 {
    let t = SystemTime::now();
    let i = Instant::now();
    let rng = thread_rng();
    let m: HashMap<u64, u64> = HashMap::new();
    let s: HashSet<u64> = HashSet::new();
    m.len() as u64 + s.len() as u64
}
