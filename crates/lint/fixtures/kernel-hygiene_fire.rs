// cardest-lint-fixture: path=crates/nn/src/gemm.rs
//! Must-fire fixture: lossy `as` casts inside an IEEE-exact kernel file.

pub fn lossy(n: usize, x: f32) -> f32 {
    let scale = n as f32;
    let back = x as usize;
    scale + back as f32
}
