// cardest-lint-fixture: path=crates/data/src/cache.rs
//! Must-not-fire fixture: well-formed pragmas (known rule + reason).

pub fn f(v: Option<u32>) -> u32 {
    // cardest-lint: allow(panic-path): caller guarantees Some by construction
    v.unwrap()
}
