// cardest-lint-fixture: path=crates/data/src/stats.rs
//! Must-fire fixture: NaN-panicking sort and exact float equality.

pub fn sort_desc(vals: &mut [f32]) {
    vals.sort_by(|a, b| b.partial_cmp(a).unwrap());
}

pub fn is_unit(x: f32) -> bool {
    x == 1.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn partial_cmp_unwrap_fires_even_in_tests() {
        let mut v = [1.0f32, 2.0];
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
}
