// cardest-lint-fixture: path=crates/data/src/stats.rs
//! Must-not-fire fixture: total_cmp ordering, tolerance compares, exact
//! equality in tests, and a justified exact-zero allow.

pub fn sort_desc(vals: &mut [f32]) {
    vals.sort_by(|a, b| b.total_cmp(a));
}

pub fn close(x: f32, y: f32) -> bool {
    (x - y).abs() < 1e-6
}

pub fn skip_zero(x: f32) -> bool {
    // cardest-lint: allow(float-total-order): exact zero skip of no-op work
    x == 0.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_equality_in_tests_is_allowed() {
        assert!(2.0f32 + 2.0 == 4.0);
    }
}
