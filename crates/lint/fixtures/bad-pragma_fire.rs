// cardest-lint-fixture: path=crates/data/src/cache.rs
//! Must-fire fixture: malformed suppression pragmas.

pub fn f(v: Option<u32>) -> u32 {
    // cardest-lint: allow(panic-path)
    let a = v.unwrap();
    // cardest-lint: allow(no-such-rule): reason present but rule unknown
    let b = a + 1;
    // cardest-lint: deny(panic-path): wrong verb
    a + b
}
