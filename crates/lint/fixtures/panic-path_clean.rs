// cardest-lint-fixture: path=crates/data/src/cache.rs
//! Must-not-fire fixture: typed errors, defaulted options, documented
//! allows, and free unwraps in test code.

pub fn typed(v: Option<u32>, r: Result<u32, CardestError>) -> Result<u32, CardestError> {
    let a = v.unwrap_or_default();
    let b = r?;
    // cardest-lint: allow(panic-path): slot is filled by construction two lines up
    let c = Some(a + b).unwrap();
    Ok(c)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_allowed() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let r: Result<u32, ()> = Ok(4);
        assert_eq!(r.expect("ok"), 4);
    }
}
