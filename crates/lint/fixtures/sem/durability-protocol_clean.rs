// cardest-lint-fixture: path=crates/store/src/fixture_durable.rs
//! Must-not-fire: one function syncs before acking; the other uses the
//! temp-file + atomic-rename protocol.

use std::fs::File;
use std::io::Write;
use std::path::Path;

pub fn save_segment(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut file = File::create(path)?;
    file.write_all(bytes)?;
    file.sync_data()?;
    Ok(())
}

pub fn publish_segment(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}
