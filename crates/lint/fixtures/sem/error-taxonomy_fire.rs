// cardest-lint-fixture: path=crates/server/src/fixture_errors.rs
//! Must-fire: a serving entry returning a stringly error, another
//! returning `Box<dyn Error>`, and a library function that prints to
//! stdout and exits the process.

pub fn handle_lookup(key: &str) -> Result<u32, String> {
    if key.is_empty() {
        return Err("empty key".to_string());
    }
    Ok(key.len() as u32)
}

pub fn handle_fetch(key: &str) -> Result<u32, Box<dyn std::error::Error>> {
    Ok(handle_lookup(key)?)
}

pub fn dump_and_die(msg: &str) {
    println!("fatal: {msg}");
    std::process::exit(2);
}
