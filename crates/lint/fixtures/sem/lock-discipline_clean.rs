// cardest-lint-fixture: path=crates/server/src/fixture_locks.rs
//! Must-not-fire: both functions take the locks in the same order, and
//! the join happens after the guard is released (the lock statement
//! projects the handle out, so the guard is a temporary dropped at the
//! `;`).

use std::sync::{Mutex, PoisonError};
use std::thread::JoinHandle;

pub struct Svc {
    a: Mutex<u32>,
    b: Mutex<u32>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Svc {
    pub fn sum_ab(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        *ga + *gb
    }

    pub fn diff_ab(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        *ga - *gb
    }

    pub fn stop(&self) {
        let handle = self
            .worker
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(t) = handle {
            let _ = t.join();
        }
    }
}
