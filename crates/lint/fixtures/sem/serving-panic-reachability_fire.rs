// cardest-lint-fixture: path=crates/server/src/fixture_handler.rs
//! Must-fire: a handler entry point reaches an `unwrap()` (and friends)
//! two calls deep; the diagnostic must carry the witness path.

pub fn handle_estimate(body: &[u8]) -> Vec<u8> {
    let q = decode(body);
    render(q)
}

fn decode(body: &[u8]) -> u32 {
    parse_len(body)
}

fn parse_len(body: &[u8]) -> u32 {
    // Reachable from handle_estimate -> decode -> parse_len.
    let first = body.first().copied().unwrap();
    u32::from(first)
}

fn render(q: u32) -> Vec<u8> {
    q.to_le_bytes().to_vec()
}
