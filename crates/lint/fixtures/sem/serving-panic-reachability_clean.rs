// cardest-lint-fixture: path=crates/server/src/fixture_handler.rs
//! Must-not-fire: the same call shape, but every serving-reachable step
//! degrades with a typed error; the only `unwrap` lives in a test, which
//! is never a serving entry point.

pub enum DecodeError {
    Empty,
}

pub fn handle_estimate(body: &[u8]) -> Result<Vec<u8>, DecodeError> {
    let q = decode(body)?;
    Ok(render(q))
}

fn decode(body: &[u8]) -> Result<u32, DecodeError> {
    parse_len(body)
}

fn parse_len(body: &[u8]) -> Result<u32, DecodeError> {
    match body.first() {
        Some(&b) => Ok(u32::from(b)),
        None => Err(DecodeError::Empty),
    }
}

fn render(q: u32) -> Vec<u8> {
    q.to_le_bytes().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let out = handle_estimate(&[7]);
        assert_eq!(out.ok().unwrap(), 7u32.to_le_bytes().to_vec());
    }
}
