// cardest-lint-fixture: path=crates/server/src/fixture_errors.rs
//! Must-not-fire: the same handlers with a typed error enum, and no
//! stdout or process::exit in library code.

#[derive(Debug)]
pub enum LookupError {
    EmptyKey,
}

pub fn handle_lookup(key: &str) -> Result<u32, LookupError> {
    if key.is_empty() {
        return Err(LookupError::EmptyKey);
    }
    Ok(key.len() as u32)
}

pub fn handle_fetch(key: &str) -> Result<u32, LookupError> {
    handle_lookup(key)
}
