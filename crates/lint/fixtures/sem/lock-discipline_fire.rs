// cardest-lint-fixture: path=crates/server/src/fixture_locks.rs
//! Must-fire: an A/B vs B/A lock-order inversion, and a guard held
//! across a thread join.

use std::sync::{Mutex, PoisonError};
use std::thread::JoinHandle;

pub struct Svc {
    a: Mutex<u32>,
    b: Mutex<u32>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Svc {
    pub fn sum_ab(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        *ga + *gb
    }

    pub fn sum_ba(&self) -> u32 {
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        *ga + *gb
    }

    pub fn stop(&self) {
        let mut w = self.worker.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(t) = w.take() {
            let _ = t.join();
        }
    }
}
