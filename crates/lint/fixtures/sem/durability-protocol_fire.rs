// cardest-lint-fixture: path=crates/store/src/fixture_durable.rs
//! Must-fire: a store function writes durable bytes and returns an
//! ack-carrying `Ok` with no `sync_data`/`sync_all`/rename on any path.

use std::fs::File;
use std::io::Write;
use std::path::Path;

pub fn save_segment(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut file = File::create(path)?;
    file.write_all(bytes)?;
    Ok(())
}
