// cardest-lint-fixture: path=crates/nn/src/tensor.rs
//! Must-fire fixture: unsafe without a SAFETY comment.

pub fn peek(v: &[f32]) -> f32 {
    unsafe { *v.get_unchecked(0) }
}
