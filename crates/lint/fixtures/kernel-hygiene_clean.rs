// cardest-lint-fixture: path=crates/nn/src/gemm.rs
//! Must-not-fire fixture: cast-free kernel code, a justified exact cast,
//! and casts confined to test code.

pub fn exact(bit: u64) -> f32 {
    // cardest-lint: allow(kernel-hygiene): bit is 0 or 1; the cast is exact
    bit as f32
}

pub fn widen(x: f32) -> f64 {
    f64::from(x)
}

#[cfg(test)]
mod tests {
    #[test]
    fn casts_in_tests_are_allowed() {
        assert_eq!(3usize as f32, 3.0);
    }
}
