// cardest-lint-fixture: path=crates/nn/src/tensor.rs
//! Must-not-fire fixture: unsafe justified by an adjacent SAFETY comment.
//! (The live workspace has no unsafe at all; this pins the escape hatch.)

pub fn peek(v: &[f32]) -> f32 {
    assert!(!v.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *v.get_unchecked(0) }
}
