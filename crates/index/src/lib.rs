// Library (non-test) code must not panic on malformed input: surface
// typed errors instead. Tests may unwrap freely.
// The workspace is 100% safe Rust; `cardest-lint` (unsafe-block rule) and
// this forbid cross-check each other.
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # cardest-index
//!
//! An exact pivot-based metric index for threshold similarity search — the
//! stand-in for **SimSelect** [44], the exact baseline of Table 6 (the
//! paper uses it to show that learned estimation is faster than even an
//! efficient exact index).
//!
//! Structure: data points are grouped around pivot points (actual dataset
//! members, chosen by k-means on PCA-reduced data); each group stores its
//! members together with their precomputed distances to the pivot. A range
//! count `card(q, τ)` then prunes with the triangle inequality at two
//! levels:
//!
//! 1. *group level* — if `d(q, pivot) − radius > τ` the whole group is
//!    skipped; if `d(q, pivot) + radius ≤ τ` the whole group matches,
//! 2. *member level* — a member `p` with `|d(q, pivot) − d(p, pivot)| > τ`
//!    cannot match and is skipped without a distance evaluation.
//!
//! All metrics used in the reproduction (L1, L2, Angular, Hamming, Jaccard
//! on binary sets) satisfy the triangle inequality between actual data
//! points, so counts are exact.

use cardest_cluster::segmentation::{Segmentation, SegmentationConfig, SegmentationMethod};
use cardest_data::metric::Metric;
use cardest_data::vector::{VectorData, VectorView};
use serde::{Deserialize, Serialize};

/// One pivot group: the pivot (a dataset index), its members, and each
/// member's distance to the pivot.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PivotGroup {
    pivot: usize,
    /// `(member index, distance to pivot)`, sorted by distance.
    members: Vec<(usize, f32)>,
    radius: f32,
}

/// Exact threshold-search index over a dataset.
#[derive(Debug, Clone)]
pub struct PivotIndex {
    metric: Metric,
    groups: Vec<PivotGroup>,
}

/// Counters describing how much work a query did (used to demonstrate the
/// pruning behaviour and in the latency discussion of Exp-9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Groups skipped entirely by the lower bound.
    pub groups_pruned: usize,
    /// Groups counted entirely by the upper bound.
    pub groups_swallowed: usize,
    /// Members skipped by the per-member bound.
    pub members_pruned: usize,
    /// Exact distance evaluations performed.
    pub distance_evals: usize,
}

impl PivotIndex {
    /// Builds the index with roughly `n_pivots` groups.
    pub fn build(data: &VectorData, metric: Metric, n_pivots: usize, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(
            metric.is_true_metric(),
            "{metric:?} violates the triangle inequality; the pivot index would return wrong counts"
        );
        let config = SegmentationConfig {
            n_segments: n_pivots.max(1),
            pca_rank: 8,
            pca_iters: 8,
            method: SegmentationMethod::PcaKMeans,
            seed,
        };
        let seg = Segmentation::fit(data, metric, &config);
        let groups = (0..seg.n_segments())
            .filter_map(|s| {
                // The pivot is the member closest to the fractional
                // centroid, so all stored distances are point-to-point and
                // the triangle inequality holds exactly. Empty segments
                // (the `?`) contribute no group.
                let members = seg.members(s);
                let pivot = *members.iter().min_by(|&&a, &&b| {
                    metric
                        .distance_to_centroid(data.view(a), seg.centroid(s))
                        .total_cmp(&metric.distance_to_centroid(data.view(b), seg.centroid(s)))
                })?;
                let mut members: Vec<(usize, f32)> = members
                    .iter()
                    .map(|&i| (i, metric.distance(data.view(pivot), data.view(i))))
                    .collect();
                members.sort_by(|a, b| a.1.total_cmp(&b.1));
                let radius = members.last().map_or(0.0, |m| m.1);
                Some(PivotGroup {
                    pivot,
                    members,
                    radius,
                })
            })
            .collect();
        PivotIndex { metric, groups }
    }

    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Exact `card(q, τ, D)` with pruning statistics.
    pub fn range_count_with_stats(
        &self,
        data: &VectorData,
        q: VectorView<'_>,
        tau: f32,
    ) -> (u32, SearchStats) {
        let mut count = 0u32;
        let mut stats = SearchStats::default();
        for g in &self.groups {
            let dq = self.metric.distance(q, data.view(g.pivot));
            stats.distance_evals += 1;
            if dq - g.radius > tau {
                stats.groups_pruned += 1;
                continue;
            }
            if dq + g.radius <= tau {
                stats.groups_swallowed += 1;
                count += g.members.len() as u32;
                continue;
            }
            // Members are sorted by pivot distance; only those with
            // pivot-distance in [dq − τ, dq + τ] can match. Both window
            // edges are found by binary search, so the members outside the
            // window are pruned in O(log n) without iterating them.
            let lo = dq - tau;
            let hi = dq + tau;
            let start = g.members.partition_point(|&(_, d)| d < lo);
            let end = g.members.partition_point(|&(_, d)| d <= hi);
            stats.members_pruned += start + (g.members.len() - end);
            for &(i, _) in &g.members[start..end] {
                stats.distance_evals += 1;
                if self.metric.distance(q, data.view(i)) <= tau {
                    count += 1;
                }
            }
        }
        (count, stats)
    }

    /// Exact `card(q, τ, D)`.
    pub fn range_count(&self, data: &VectorData, q: VectorView<'_>, tau: f32) -> u32 {
        self.range_count_with_stats(data, q, tau).0
    }

    /// Exact matching member ids (threshold similarity *search*, not just
    /// counting) — the operation SimSelect actually serves.
    pub fn range_search(&self, data: &VectorData, q: VectorView<'_>, tau: f32) -> Vec<usize> {
        let mut out = Vec::new();
        for g in &self.groups {
            let dq = self.metric.distance(q, data.view(g.pivot));
            if dq - g.radius > tau {
                continue;
            }
            let lo = dq - tau;
            let hi = dq + tau;
            let start = g.members.partition_point(|&(_, d)| d < lo);
            let end = g.members.partition_point(|&(_, d)| d <= hi);
            for &(i, _) in &g.members[start..end] {
                if self.metric.distance(q, data.view(i)) <= tau {
                    out.push(i);
                }
            }
        }
        out
    }

    /// Heap size of the index metadata in bytes (pivot lists).
    pub fn heap_bytes(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.members.len() * std::mem::size_of::<(usize, f32)>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::paper::{DatasetSpec, PaperDataset};

    fn check_exact(ds: PaperDataset, seed: u64) {
        let spec = DatasetSpec {
            n_data: 600,
            ..ds.spec()
        };
        let data = spec.generate(seed);
        let index = PivotIndex::build(&data, spec.metric, 12, seed);
        // Compare against brute force for sampled queries and thresholds.
        for q in (0..data.len()).step_by(101) {
            for tau in [spec.tau_max * 0.1, spec.tau_max * 0.4, spec.tau_max] {
                let brute = (0..data.len())
                    .filter(|&p| spec.metric.distance(data.view(q), data.view(p)) <= tau)
                    .count() as u32;
                let (fast, _) = index.range_count_with_stats(&data, data.view(q), tau);
                assert_eq!(fast, brute, "{ds:?} q={q} tau={tau}");
            }
        }
    }

    #[test]
    fn exact_on_hamming_dataset() {
        check_exact(PaperDataset::ImageNet, 21);
    }

    #[test]
    fn exact_on_angular_dataset() {
        check_exact(PaperDataset::GloVe300, 22);
    }

    #[test]
    fn exact_on_jaccard_dataset() {
        check_exact(PaperDataset::Bms, 23);
    }

    #[test]
    fn exact_on_l2_dataset() {
        check_exact(PaperDataset::YouTube, 24);
    }

    #[test]
    fn pruning_actually_happens_for_small_thresholds() {
        let spec = DatasetSpec {
            n_data: 1000,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(25);
        let index = PivotIndex::build(&data, spec.metric, 16, 25);
        let (_, stats) = index.range_count_with_stats(&data, data.view(0), 0.05);
        assert!(
            stats.groups_pruned > 0 || stats.members_pruned > 0,
            "no pruning at a tight threshold: {stats:?}"
        );
        // Distance evaluations must be well below brute force.
        assert!(
            stats.distance_evals < data.len(),
            "index evaluated {} distances for {} points",
            stats.distance_evals,
            data.len()
        );
    }

    #[test]
    fn distance_evals_equal_the_in_window_member_count_exactly() {
        // Regression test for the member-window scan: members are sorted by
        // pivot distance, so everything above `dq + τ` must be pruned by
        // binary search, never iterated. The exact distance evaluations are
        // therefore one per inspected group (the pivot) plus exactly the
        // members whose pivot distance lies inside [dq − τ, dq + τ] for
        // partially-scanned groups — no more.
        let spec = DatasetSpec {
            n_data: 800,
            ..PaperDataset::YouTube.spec()
        };
        let data = spec.generate(27);
        let index = PivotIndex::build(&data, spec.metric, 10, 27);
        for q in (0..data.len()).step_by(97) {
            for tau in [spec.tau_max * 0.1, spec.tau_max * 0.3, spec.tau_max * 0.8] {
                let view = data.view(q);
                let mut expected_evals = 0usize;
                let mut expected_pruned = 0usize;
                for g in &index.groups {
                    let dq = spec.metric.distance(view, data.view(g.pivot));
                    expected_evals += 1; // the pivot itself
                    if dq - g.radius > tau || dq + g.radius <= tau {
                        continue; // pruned or swallowed: no member scan
                    }
                    let in_window = g
                        .members
                        .iter()
                        .filter(|&&(_, d)| d >= dq - tau && d <= dq + tau)
                        .count();
                    expected_evals += in_window;
                    expected_pruned += g.members.len() - in_window;
                }
                let (_, stats) = index.range_count_with_stats(&data, view, tau);
                assert_eq!(
                    stats.distance_evals, expected_evals,
                    "q={q} tau={tau}: scanned members outside the window"
                );
                assert_eq!(
                    stats.members_pruned, expected_pruned,
                    "q={q} tau={tau}: pruned-member accounting is off"
                );
            }
        }
    }

    #[test]
    fn range_search_returns_the_matching_ids() {
        let spec = DatasetSpec {
            n_data: 400,
            ..PaperDataset::GloVe300.spec()
        };
        let data = spec.generate(26);
        let index = PivotIndex::build(&data, spec.metric, 8, 26);
        let tau = spec.tau_max * 0.3;
        let mut got = index.range_search(&data, data.view(5), tau);
        got.sort_unstable();
        let expect: Vec<usize> = (0..data.len())
            .filter(|&p| spec.metric.distance(data.view(5), data.view(p)) <= tau)
            .collect();
        assert_eq!(got, expect);
        // The query itself (distance 0) is always included.
        assert!(got.contains(&5));
    }
}
