//! Loss functions from the paper.
//!
//! * [`hybrid_loss`] — the regression loss of §3.1: the model predicts
//!   `log card` and the loss combines MAPE and λ·Q-error on the
//!   exponentiated estimate.
//! * [`weighted_bce_loss`] — the global model's loss of §3.3: binary
//!   cross-entropy over per-segment selection probabilities, with positive
//!   labels up-weighted by `1 + ε` where `ε` is the min-max-normalized
//!   per-segment cardinality, so segments holding large cardinalities are
//!   not missed.

use serde::{Deserialize, Serialize};

/// Floor applied to `min(ĉ, c)` in the Q-error term, per §2 ("we set it
/// with a small value, e.g., 0.1").
pub const Q_ERROR_FLOOR: f32 = 0.1;

/// Configuration for the hybrid regression loss `MAPE + λ·Q-error`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HybridLoss {
    /// Weight λ of the Q-error term (a tunable hyperparameter, §3.1).
    pub lambda: f32,
    /// Clamp on the magnitude of the per-sample gradient; the Q-error term
    /// is exponential in the prediction, so clipping keeps early training
    /// stable (the paper trains the same way implicitly via small LR).
    pub grad_clip: f32,
}

impl Default for HybridLoss {
    fn default() -> Self {
        HybridLoss {
            lambda: 0.5,
            grad_clip: 10.0,
        }
    }
}

impl HybridLoss {
    /// Evaluates the loss and gradient for a batch.
    ///
    /// `pred_log[i]` is the network output (an estimate of `ln card`),
    /// `card[i]` the true cardinality. Returns the mean loss and the
    /// gradient w.r.t. each `pred_log[i]` (already averaged over the batch).
    pub fn eval(&self, pred_log: &[f32], card: &[f32]) -> (f32, Vec<f32>) {
        let (total, grads) = self.eval_partial(pred_log, card, pred_log.len());
        ((total / pred_log.len().max(1) as f64) as f32, grads)
    }

    /// Evaluates a *shard* of a batch whose full size is `norm`.
    ///
    /// Per-sample gradients are averaged over `norm` (not over the shard),
    /// so the gradient of each sample is identical to what a whole-batch
    /// [`eval`](Self::eval) with `norm` samples would produce — the
    /// data-parallel trainer relies on this to make sharded training
    /// bit-identical to sequential. Returns the *unnormalized* f64 loss sum
    /// over the shard (the caller divides by `norm` after accumulating all
    /// shards in a fixed order) and the per-sample gradients.
    pub fn eval_partial(&self, pred_log: &[f32], card: &[f32], norm: usize) -> (f64, Vec<f32>) {
        assert_eq!(
            pred_log.len(),
            card.len(),
            "prediction/target length mismatch"
        );
        let n = norm.max(1) as f32;
        let mut grads = Vec::with_capacity(pred_log.len());
        let mut total = 0.0f64;
        for (&p, &c) in pred_log.iter().zip(card) {
            // Keep exp in a safe range; card is at most a few million here.
            let p = p.clamp(-20.0, 20.0);
            let c_hat = p.exp();
            let c_safe = c.max(Q_ERROR_FLOOR);
            // MAPE term: |ĉ − c| / c, gradient = sign(ĉ − c)·ĉ/c.
            let mape = (c_hat - c).abs() / c_safe;
            let g_mape = (c_hat - c).signum() * c_hat / c_safe;
            // Q-error term with the 0.1 floor.
            let hi = c_hat.max(c).max(Q_ERROR_FLOOR);
            let lo = c_hat.min(c).max(Q_ERROR_FLOOR);
            let qerr = hi / lo;
            let g_q = if c_hat >= c {
                // q = ĉ / max(c, floor): dq/dp = ĉ / lo.
                c_hat / lo
            } else if c_hat > Q_ERROR_FLOOR {
                // q = c / ĉ: dq/dp = −c/ĉ.
                -(hi / c_hat.max(Q_ERROR_FLOOR))
            } else {
                // ĉ below the floor: q = hi / floor, dq/dp = 0 until ĉ
                // re-enters the active range; nudge upward instead.
                -(hi / Q_ERROR_FLOOR)
            };
            total += (mape + self.lambda * qerr) as f64;
            let g = (g_mape + self.lambda * g_q) / n;
            grads.push(g.clamp(-self.grad_clip, self.grad_clip));
        }
        (total, grads)
    }
}

/// Convenience wrapper: hybrid loss with the given λ and default clipping.
pub fn hybrid_loss(pred_log: &[f32], card: &[f32], lambda: f32) -> (f32, Vec<f32>) {
    HybridLoss {
        lambda,
        ..HybridLoss::default()
    }
    .eval(pred_log, card)
}

/// Cardinality-weighted binary cross-entropy for the global model (§3.3).
///
/// For a batch of `B` queries over `n` segments:
/// * `probs[j*n + i]` — predicted probability that segment `i` holds
///   matches for query `j` (output of the shift-sigmoid),
/// * `labels` — 1.0 if `card(j, i) > 0` else 0.0,
/// * `weights` — the min-max-normalized cardinality `ε^{j}[i]` (pass zeros
///   to recover plain BCE; this is the "no penalty" ablation of Exp-6).
///
/// Returns the mean loss and the gradient w.r.t. the *probabilities*.
pub fn weighted_bce_loss(probs: &[f32], labels: &[f32], weights: &[f32]) -> (f32, Vec<f32>) {
    let (total, grads) = weighted_bce_partial(probs, labels, weights, probs.len());
    ((total / probs.len().max(1) as f64) as f32, grads)
}

/// Shard-of-a-batch variant of [`weighted_bce_loss`]: per-element gradients
/// are averaged over `norm` (the full batch's element count) rather than the
/// shard length, and the returned loss is the unnormalized f64 sum over the
/// shard. See [`HybridLoss::eval_partial`] for why.
pub fn weighted_bce_partial(
    probs: &[f32],
    labels: &[f32],
    weights: &[f32],
    norm: usize,
) -> (f64, Vec<f32>) {
    assert_eq!(probs.len(), labels.len(), "probs/labels length mismatch");
    assert_eq!(probs.len(), weights.len(), "probs/weights length mismatch");
    let n = norm.max(1) as f32;
    let mut grads = Vec::with_capacity(probs.len());
    let mut total = 0.0f64;
    const EPS: f32 = 1e-6;
    for ((&p, &r), &eps_w) in probs.iter().zip(labels).zip(weights) {
        let p = p.clamp(EPS, 1.0 - EPS);
        let w_pos = 1.0 + eps_w;
        let loss = -(r * w_pos * p.ln() + (1.0 - r) * (1.0 - p).ln());
        total += loss as f64;
        // dJ/dp, averaged over the batch.
        let g = (-(r * w_pos / p) + (1.0 - r) / (1.0 - p)) / n;
        grads.push(g.clamp(-1e4, 1e4));
    }
    (total, grads)
}

/// Min-max normalizes one query's per-segment cardinalities into the weights
/// `ε^{j}[i]` of §3.3. A query whose cardinalities are all equal gets zero
/// weights (the normalization is degenerate there).
pub fn minmax_weights(cards: &[f32]) -> Vec<f32> {
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &c in cards {
        lo = lo.min(c);
        hi = hi.max(c);
    }
    if !lo.is_finite() || hi <= lo {
        return vec![0.0; cards.len()];
    }
    cards.iter().map(|&c| (c - lo) / (hi - lo)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_loss_is_zero_gradient_free_at_perfect_prediction() {
        // At ĉ = c the loss is 1·λ (Q-error = 1) + 0 (MAPE).
        let c = 50.0f32;
        let (loss, _) = hybrid_loss(&[c.ln()], &[c], 0.5);
        assert!(
            (loss - 0.5).abs() < 1e-3,
            "loss at perfect prediction should be λ, got {loss}"
        );
    }

    #[test]
    fn hybrid_loss_gradient_matches_finite_difference() {
        let lambda = 0.7;
        for (p, c) in [(3.0f32, 10.0f32), (2.0, 20.0), (4.5, 30.0), (1.0, 8.0)] {
            let h = 1e-3;
            let (lp, _) = hybrid_loss(&[p + h], &[c], lambda);
            let (lm, _) = hybrid_loss(&[p - h], &[c], lambda);
            let fd = (lp - lm) / (2.0 * h);
            let (_, g) = hybrid_loss(&[p], &[c], lambda);
            assert!(
                (fd - g[0]).abs() / fd.abs().max(1.0) < 1e-2,
                "p={p} c={c}: fd={fd} analytic={}",
                g[0]
            );
        }
    }

    #[test]
    fn hybrid_loss_handles_zero_cardinality() {
        // card = 0 exercises the Q-error floor; must stay finite.
        let (loss, g) = hybrid_loss(&[2.0], &[0.0], 0.5);
        assert!(loss.is_finite() && g[0].is_finite());
        assert!(
            g[0] > 0.0,
            "overestimating zero cardinality must push the estimate down"
        );
    }

    #[test]
    fn hybrid_gradient_is_clipped() {
        let l = HybridLoss {
            lambda: 1.0,
            grad_clip: 5.0,
        };
        let (_, g) = l.eval(&[15.0], &[1.0]); // wildly overestimated
        assert!(g[0] <= 5.0 + 1e-6);
    }

    #[test]
    fn weighted_bce_prefers_not_missing_heavy_segments() {
        // Two segments, both labeled positive and predicted at p = 0.3;
        // the heavier one (weight 1.0) must receive a larger push upward.
        let probs = [0.3f32, 0.3];
        let labels = [1.0f32, 1.0];
        let weights = [0.0f32, 1.0];
        let (_, g) = weighted_bce_loss(&probs, &labels, &weights);
        assert!(
            g[1] < g[0],
            "heavy segment should get the stronger (more negative) gradient"
        );
        assert!(g[0] < 0.0 && g[1] < 0.0);
    }

    #[test]
    fn weighted_bce_gradient_matches_finite_difference() {
        let probs = [0.2f32, 0.8, 0.55];
        let labels = [1.0f32, 0.0, 1.0];
        let weights = [0.5f32, 0.0, 0.9];
        let (_, g) = weighted_bce_loss(&probs, &labels, &weights);
        for i in 0..probs.len() {
            let h = 1e-4;
            let mut pp = probs;
            pp[i] += h;
            let (lp, _) = weighted_bce_loss(&pp, &labels, &weights);
            pp[i] -= 2.0 * h;
            let (lm, _) = weighted_bce_loss(&pp, &labels, &weights);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - g[i]).abs() / fd.abs().max(1.0) < 1e-2,
                "i={i}: fd={fd} an={}",
                g[i]
            );
        }
    }

    #[test]
    fn partial_eval_shards_reproduce_full_batch_gradients() {
        // Per-sample gradients must be bit-identical whether the batch is
        // evaluated whole or in shards normalized by the full batch size —
        // the data-parallel trainer depends on this.
        let loss = HybridLoss::default();
        let preds = [1.0f32, 2.5, 0.3, 4.0, 3.3, 2.2];
        let cards = [5.0f32, 12.0, 1.0, 60.0, 25.0, 9.0];
        let (full_loss, full_g) = loss.eval(&preds, &cards);
        let mut total = 0.0f64;
        let mut g = Vec::new();
        for (ps, cs) in preds.chunks(2).zip(cards.chunks(2)) {
            let (t, gs) = loss.eval_partial(ps, cs, preds.len());
            total += t;
            g.extend(gs);
        }
        assert_eq!(g, full_g);
        let sharded_loss = (total / preds.len() as f64) as f32;
        assert!((sharded_loss - full_loss).abs() <= 1e-6 * full_loss.abs());

        let probs = [0.2f32, 0.8, 0.55, 0.4];
        let labels = [1.0f32, 0.0, 1.0, 0.0];
        let weights = [0.5f32, 0.0, 0.9, 0.1];
        let (_, full_g) = weighted_bce_loss(&probs, &labels, &weights);
        let mut g = Vec::new();
        for i in (0..probs.len()).step_by(2) {
            let (_, gs) = weighted_bce_partial(
                &probs[i..i + 2],
                &labels[i..i + 2],
                &weights[i..i + 2],
                probs.len(),
            );
            g.extend(gs);
        }
        assert_eq!(g, full_g);
    }

    #[test]
    fn minmax_weights_normalize_and_degenerate() {
        assert_eq!(minmax_weights(&[0.0, 5.0, 10.0]), vec![0.0, 0.5, 1.0]);
        assert_eq!(minmax_weights(&[3.0, 3.0, 3.0]), vec![0.0, 0.0, 0.0]);
        assert_eq!(minmax_weights(&[]), Vec::<f32>::new());
    }
}
