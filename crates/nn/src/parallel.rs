//! Thread-count knob and scheduling helpers for parallel training.
//!
//! Training parallelism in this workspace has two independent levels:
//!
//! 1. **Segment-parallel** — the GL family's per-segment local models are
//!    independent given the segmentation, so they are fanned across scoped
//!    threads with [`parallel_largest_first`]: a work queue ordered by
//!    per-segment sample count (largest first), which keeps the stragglers
//!    from serializing the tail. Each worker owns one [`Scratch`].
//! 2. **Data-parallel** — inside one model, each minibatch is split into
//!    fixed-size row shards whose gradients are reduced in ascending shard
//!    order (see `trainer::sharded_forward_backward`), so the trained
//!    weights are bit-identical for any thread count.
//!
//! The process-wide knob ([`set_train_threads`]) feeds both levels; a
//! [`TrainConfig`](crate::trainer::TrainConfig) can override it per run via
//! its `threads` field. Because every parallel path is deterministic by
//! construction, changing the knob never changes a trained model — only how
//! long training takes.

use crate::scratch::Scratch;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide training thread count; 0 means "ask the OS".
static TRAIN_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the process-wide training thread count (`0` restores the
/// default of one thread per available core). The `exp` CLI exposes this
/// as `--train-threads`.
pub fn set_train_threads(n: usize) {
    TRAIN_THREADS.store(n, Ordering::Relaxed);
}

/// The effective process-wide training thread count.
pub fn train_threads() -> usize {
    match TRAIN_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
        n => n,
    }
}

/// Resolves a per-run thread override: `0` falls back to the process-wide
/// knob, anything else wins.
pub fn resolve_threads(cfg_threads: usize) -> usize {
    if cfg_threads == 0 {
        train_threads()
    } else {
        cfg_threads
    }
}

/// Runs `work(i, scratch)` for every `i in 0..weights.len()` across up to
/// `threads` scoped workers and returns the results in index order.
///
/// Jobs are dispatched from a shared queue ordered by `weights[i]`
/// descending (ties broken by index, so the queue order is deterministic):
/// the most expensive jobs start first and cheap ones fill the gaps, which
/// bounds the makespan at (longest job + balanced remainder) instead of
/// whatever a contiguous chunking happens to produce. Each worker owns one
/// [`Scratch`] for the lifetime of the queue.
///
/// Results are independent of the thread count by construction: each index
/// is processed exactly once and the output vector is assembled by index,
/// so `threads = 1` and `threads = 8` return identical values whenever
/// `work` itself is deterministic per index.
// `expect` propagates worker panics to the caller (the standard
// `join()` idiom); every slot is filled before the loop ends.
#[allow(clippy::expect_used)]
pub fn parallel_largest_first<R, F>(weights: &[usize], threads: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, &mut Scratch) -> R + Sync,
{
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));
    let threads = threads.clamp(1, n);
    if threads == 1 {
        let mut scratch = Scratch::new();
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for &i in &order {
            out[i] = Some(work(i, &mut scratch));
        }
        // cardest-lint: allow(panic-path): every slot is filled by the loop above; a hole is a queue-logic bug worth aborting on
        return out.into_iter().map(|r| r.expect("job ran")).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut results: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (order, cursor, work) = (&order, &cursor, &work);
                s.spawn(move || {
                    let mut scratch = Scratch::new();
                    let mut got = Vec::new();
                    loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = order.get(k) else { break };
                        got.push((i, work(i, &mut scratch)));
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            // cardest-lint: allow(panic-path): standard join() idiom — re-raise a worker panic on the caller thread
            .flat_map(|h| h.join().expect("parallel training worker panicked"))
            .collect()
    });
    results.sort_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, r)| r).collect()
}

/// Fans keyed jobs carrying exclusive borrows across up to `threads`
/// scoped workers with a static largest-first round-robin assignment.
///
/// Unlike [`parallel_largest_first`], each job here owns its payload `T`
/// (typically an `&mut` borrow of one model plus its inputs), so work
/// items cannot be handed out through a shared queue — instead jobs are
/// sorted by weight descending (key ascending on ties) and dealt
/// round-robin, which balances heavy jobs across workers while staying
/// reproducible. Results come back sorted by key, so any downstream
/// floating-point reduction performed in that order is bit-identical for
/// every thread count.
// `expect` propagates worker panics to the caller (the standard
// `join()` idiom).
#[allow(clippy::expect_used)]
pub fn fan_exclusive<T: Send, R: Send>(
    mut jobs: Vec<(usize, T, usize)>,
    threads: usize,
    work: impl Fn(usize, T) -> R + Sync,
) -> Vec<(usize, R)> {
    jobs.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    let threads = threads.clamp(1, jobs.len().max(1));
    let mut out: Vec<(usize, R)> = if threads <= 1 {
        jobs.into_iter()
            .map(|(key, t, _)| (key, work(key, t)))
            .collect()
    } else {
        // Round-robin deal: worker w takes jobs w, w+T, w+2T, … of the
        // largest-first order.
        let mut per_worker: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, (key, t, _)) in jobs.into_iter().enumerate() {
            per_worker[i % threads].push((key, t));
        }
        let work = &work;
        std::thread::scope(|s| {
            let handles: Vec<_> = per_worker
                .into_iter()
                .map(|mine| {
                    s.spawn(move || {
                        mine.into_iter()
                            .map(|(key, t)| (key, work(key, t)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                // cardest-lint: allow(panic-path): standard join() idiom — re-raise a worker panic on the caller thread
                .flat_map(|h| h.join().expect("fan_exclusive worker panicked"))
                .collect()
        })
    };
    out.sort_by_key(|&(key, _)| key);
    out
}

/// Splits a row-major buffer of `rows × row_width` floats into contiguous
/// row chunks and runs `work(first_row, chunk)` for each across scoped
/// threads (the blocked GEMM's row-partitioned parallel path).
///
/// Chunk boundaries are aligned to multiples of `align` rows so the
/// micro-kernel keeps full tiles except at the true tail. Because every
/// output row is produced wholly by one worker and row results do not
/// depend on which chunk a row landed in, the output is bit-identical for
/// every `threads` value.
pub fn parallel_row_chunks<F>(
    out: &mut [f32],
    row_width: usize,
    rows: usize,
    threads: usize,
    align: usize,
    work: F,
) where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert_eq!(out.len(), rows * row_width);
    let threads = threads.clamp(1, rows.max(1));
    if threads <= 1 || rows == 0 || row_width == 0 {
        work(0, out);
        return;
    }
    let align = align.max(1);
    let chunk_rows = rows.div_ceil(threads).div_ceil(align) * align;
    // `scope` joins every worker and re-raises any panic at scope exit.
    std::thread::scope(|s| {
        for (ci, chunk) in out.chunks_mut(chunk_rows * row_width).enumerate() {
            let work = &work;
            s.spawn(move || work(ci * chunk_rows, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn largest_first_returns_results_in_index_order() {
        let weights = [3usize, 50, 1, 20];
        for threads in [1, 2, 8] {
            let out = parallel_largest_first(&weights, threads, |i, _| i * 10);
            assert_eq!(out, vec![0, 10, 20, 30], "threads={threads}");
        }
    }

    #[test]
    fn largest_first_covers_every_index_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counts: Vec<AtomicU32> = (0..37).map(|_| AtomicU32::new(0)).collect();
        let weights: Vec<usize> = (0..37).map(|i| (i * 7) % 13).collect();
        parallel_largest_first(&weights, 8, |i, _| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u8> = parallel_largest_first(&[], 4, |_, _| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn fan_exclusive_visits_each_job_once_and_sorts_by_key() {
        let mut owned: Vec<u32> = (0..23).collect();
        for threads in [1, 2, 8] {
            let jobs: Vec<(usize, &mut u32, usize)> = owned
                .iter_mut()
                .enumerate()
                .map(|(i, v)| (i, v, (i * 5) % 7))
                .collect();
            let out = fan_exclusive(jobs, threads, |key, v| {
                *v += 1;
                key * 2
            });
            let keys: Vec<usize> = out.iter().map(|&(k, _)| k).collect();
            assert_eq!(keys, (0..23).collect::<Vec<_>>(), "threads={threads}");
            assert!(out.iter().all(|&(k, r)| r == k * 2));
        }
        // Three passes over 23 jobs → every slot bumped exactly 3 times.
        assert!(owned.iter().enumerate().all(|(i, &v)| v == i as u32 + 3));
    }

    #[test]
    fn row_chunks_cover_all_rows_for_any_thread_count() {
        let rows = 37;
        let width = 3;
        for threads in [1, 2, 5, 8, 64] {
            let mut buf = vec![0.0f32; rows * width];
            parallel_row_chunks(&mut buf, width, rows, threads, 4, |r0, chunk| {
                for (local, row) in chunk.chunks_exact_mut(width).enumerate() {
                    row.fill((r0 + local) as f32);
                }
            });
            for r in 0..rows {
                assert!(
                    buf[r * width..(r + 1) * width]
                        .iter()
                        .all(|&x| x == r as f32),
                    "row {r} wrong at threads={threads}"
                );
            }
        }
    }

    #[test]
    fn thread_knob_round_trips() {
        set_train_threads(3);
        assert_eq!(train_threads(), 3);
        assert_eq!(resolve_threads(0), 3);
        assert_eq!(resolve_threads(5), 5);
        set_train_threads(0);
        assert!(train_threads() >= 1);
    }
}
