//! Optimizers: Adam (used for every model in the paper) and plain SGD with
//! momentum (kept for ablations).
//!
//! Optimizers hold flat per-parameter state aligned with the deterministic
//! visitation order of `params_mut()`; after a step they zero the gradient
//! accumulators so layers can simply `+=` into them during backward.

use crate::layers::ParamSlice;
use serde::{Deserialize, Serialize};

/// A first-order optimizer stepping a list of parameter slices.
pub trait Optimizer {
    /// Applies one update step and zeroes the gradients.
    fn step(&mut self, params: &mut [ParamSlice<'_>]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by fine-tuning phases, which the
    /// paper runs at a smaller LR for 2–3 iterations on join transfer).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [ParamSlice<'_>]) {
        // Lazily size the state on first use; the parameter list shape is
        // fixed for a model's lifetime.
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| vec![0.0; p.values.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.values.len()]).collect();
            self.t = 0;
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (pi, p) in params.iter_mut().enumerate() {
            debug_assert_eq!(
                self.m[pi].len(),
                p.values.len(),
                "optimizer state shape drifted"
            );
            let (m, v) = (&mut self.m[pi], &mut self.v[pi]);
            for i in 0..p.values.len() {
                let g = p.grads[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let mhat = m[i] / b1t;
                let vhat = v[i] / b2t;
                p.values[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
                p.grads[i] = 0.0;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// SGD with classical momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [ParamSlice<'_>]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| vec![0.0; p.values.len()]).collect();
        }
        for (pi, p) in params.iter_mut().enumerate() {
            let vel = &mut self.velocity[pi];
            for ((v, val), g) in vel
                .iter_mut()
                .zip(p.values.iter_mut())
                .zip(p.grads.iter_mut())
            {
                *v = self.momentum * *v + *g;
                *val -= self.lr * *v;
                *g = 0.0;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_grad(x: &[f32]) -> Vec<f32> {
        // ∇ of 0.5·Σ (x − 3)²
        x.iter().map(|v| v - 3.0).collect()
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut x = vec![0.0f32; 4];
        let mut g = vec![0.0f32; 4];
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let grad = quad_grad(&x);
            g.copy_from_slice(&grad);
            let mut params = vec![ParamSlice {
                values: &mut x,
                grads: &mut g,
            }];
            opt.step(&mut params);
        }
        assert!(x.iter().all(|v| (v - 3.0).abs() < 1e-2), "x = {x:?}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut x = vec![10.0f32; 3];
        let mut g = vec![0.0f32; 3];
        let mut opt = Sgd::new(0.05, 0.9);
        for _ in 0..400 {
            let grad = quad_grad(&x);
            g.copy_from_slice(&grad);
            let mut params = vec![ParamSlice {
                values: &mut x,
                grads: &mut g,
            }];
            opt.step(&mut params);
        }
        assert!(x.iter().all(|v| (v - 3.0).abs() < 1e-2), "x = {x:?}");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut x = vec![1.0f32];
        let mut g = vec![5.0f32];
        let mut opt = Adam::new(0.01);
        opt.step(&mut [ParamSlice {
            values: &mut x,
            grads: &mut g,
        }]);
        assert_eq!(g[0], 0.0);
    }

    #[test]
    fn learning_rate_override_applies() {
        let mut opt = Adam::new(0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }
}
