//! Deterministic, seeded fault injection.
//!
//! The robustness suite (`tests/fault_injection.rs`) needs to manufacture
//! the failure modes a serving system actually meets — NaN-poisoned
//! weights after a bad checkpoint, truncated or bit-flipped artifact
//! files, corrupted query vectors — reproducibly, so a failing run can be
//! replayed from its seed. All randomness flows through a caller-seeded
//! `StdRng`; none of these helpers are used on the serving path itself.

use crate::layers::ParamSlice;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Overwrites `count` randomly chosen parameter values with NaN. Returns
/// the number of values actually poisoned (less than `count` only for
/// parameterless nets).
pub fn poison_params_nan(params: &mut [ParamSlice<'_>], seed: u64, count: usize) -> usize {
    let total: usize = params.iter().map(|p| p.values.len()).sum();
    if total == 0 {
        return 0;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17);
    let mut poisoned = 0;
    for _ in 0..count {
        let mut at = rng.gen_range(0..total);
        for p in params.iter_mut() {
            if at < p.values.len() {
                p.values[at] = f32::NAN;
                poisoned += 1;
                break;
            }
            at -= p.values.len();
        }
    }
    poisoned
}

/// Keeps only the first `keep` bytes — a crash mid-download or mid-copy.
pub fn truncate(bytes: &[u8], keep: usize) -> Vec<u8> {
    bytes[..keep.min(bytes.len())].to_vec()
}

/// Flips `flips` randomly chosen bits in place — bit rot / torn storage.
pub fn flip_bits(bytes: &mut [u8], seed: u64, flips: usize) {
    if bytes.is_empty() {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB17F);
    for _ in 0..flips {
        let at = rng.gen_range(0..bytes.len());
        let bit = rng.gen_range(0..8u32);
        bytes[at] ^= 1 << bit;
    }
}

/// Rewrites an artifact's format-version field (bytes 8..12 of the
/// container layout) to `version` — a file produced by a different release.
pub fn skew_version(bytes: &mut [u8], version: u32) {
    if bytes.len() >= 12 {
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
    }
}

/// Overwrites one randomly chosen query component with NaN or ±∞ (picked
/// by the seed). Returns the corrupted component index.
pub fn corrupt_query(q: &mut [f32], seed: u64) -> usize {
    assert!(!q.is_empty(), "cannot corrupt an empty query");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF);
    let at = rng.gen_range(0..q.len());
    q[at] = match rng.gen_range(0..3u32) {
        0 => f32::NAN,
        1 => f32::INFINITY,
        _ => f32::NEG_INFINITY,
    };
    at
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Layer};
    use crate::net::Sequential;
    use crate::Activation;

    fn tiny_net() -> Sequential {
        let mut rng = StdRng::seed_from_u64(7);
        Sequential::new(vec![
            Layer::Dense(Dense::new(&mut rng, 4, 3, Activation::Relu)),
            Layer::Dense(Dense::new(&mut rng, 3, 1, Activation::Identity)),
        ])
    }

    #[test]
    fn poisoning_is_deterministic_and_counted() {
        let mut a = tiny_net();
        let mut b = a.clone();
        let na = poison_params_nan(&mut a.params_mut(), 42, 5);
        let nb = poison_params_nan(&mut b.params_mut(), 42, 5);
        assert_eq!(na, nb);
        assert!(na >= 1);
        // Same seed → same poisoned positions.
        let nan_mask = |n: &Sequential| -> Vec<bool> {
            n.param_values()
                .iter()
                .flat_map(|s| s.iter())
                .map(|v| v.is_nan())
                .collect()
        };
        let (pa, pb) = (nan_mask(&a), nan_mask(&b));
        assert_eq!(pa, pb);
        assert!(pa.iter().any(|&x| x));
    }

    #[test]
    fn bit_flips_change_exactly_some_bytes_deterministically() {
        let orig: Vec<u8> = (0..64u8).collect();
        let mut x = orig.clone();
        let mut y = orig.clone();
        flip_bits(&mut x, 9, 4);
        flip_bits(&mut y, 9, 4);
        assert_eq!(x, y);
        assert_ne!(x, orig);
        let changed = x.iter().zip(&orig).filter(|(a, b)| a != b).count();
        assert!((1..=4).contains(&changed));
    }

    #[test]
    fn truncate_and_skew_are_shape_safe() {
        let b: Vec<u8> = (0..32u8).collect();
        assert_eq!(truncate(&b, 10).len(), 10);
        assert_eq!(truncate(&b, 100).len(), 32);
        let mut v = b.clone();
        skew_version(&mut v, 9);
        assert_eq!(&v[8..12], &9u32.to_le_bytes());
        let mut short = vec![0u8; 4];
        skew_version(&mut short, 9); // no-op, no panic
        assert_eq!(short, vec![0u8; 4]);
    }

    #[test]
    fn corrupt_query_injects_exactly_one_non_finite() {
        let mut q = vec![0.5f32; 16];
        let at = corrupt_query(&mut q, 3);
        assert!(!q[at].is_finite());
        assert_eq!(q.iter().filter(|v| !v.is_finite()).count(), 1);
        // Deterministic replay.
        let mut q2 = vec![0.5f32; 16];
        assert_eq!(corrupt_query(&mut q2, 3), at);
    }
}
