//! Versioned, checksummed model artifacts.
//!
//! A trained estimator deserialized from silently-corrupted bytes is the
//! worst failure mode a serving system has: it answers confidently with
//! garbage. This module wraps any serialized payload in a small binary
//! container that makes truncation, bit-flips, and format skew loud:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "CARDESTM"
//! 8       4     format version (u32 LE) — currently 1
//! 12      4     kind length K (u32 LE)
//! 16      K     kind (utf-8, e.g. "cardest.gl") — which estimator family
//! 16+K    8     payload length N (u64 LE)
//! 24+K    8     FNV-1a 64 checksum of the payload (u64 LE)
//! 32+K    N     payload (serde_json bytes of the estimator)
//! ```
//!
//! Every load re-verifies magic → version → kind → length → checksum, in
//! that order, so each corruption class maps to its own
//! [`ArtifactError`] variant. Writes go through a temp file + atomic
//! rename: a crash mid-write leaves the old artifact intact, never a torn
//! one.
//!
//! The estimator-specific `save_artifact` / `load_artifact` methods live
//! next to their types (`GlEstimator`, `CardNet`, `MlpEstimator`); this
//! module only knows about byte containers.

use std::fmt;
use std::path::Path;

/// Leading magic bytes of every artifact file.
pub const MAGIC: [u8; 8] = *b"CARDESTM";

/// Current container format version. Bump on any layout change; old
/// readers then reject new files as [`ArtifactError::UnsupportedVersion`]
/// instead of misinterpreting them.
pub const FORMAT_VERSION: u32 = 1;

/// Everything that can go wrong loading (or saving) a model artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactError {
    /// Filesystem failure (open/read/write/rename), with the OS message.
    Io(String),
    /// The file does not start with [`MAGIC`] — not an artifact at all.
    BadMagic,
    /// The container format version is newer (or older) than this reader.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The file ends before the declared structure does.
    Truncated { needed: usize, got: usize },
    /// The payload bytes do not hash to the stored checksum: bit rot,
    /// bit-flip, or a partially overwritten file.
    ChecksumMismatch { expected: u64, got: u64 },
    /// The artifact holds a different estimator family than requested.
    KindMismatch { expected: String, found: String },
    /// The checksummed payload still failed to deserialize — a writer bug
    /// or an incompatible estimator schema under the same kind.
    Malformed(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(m) => write!(f, "artifact io error: {m}"),
            ArtifactError::BadMagic => write!(f, "not a cardest artifact (bad magic)"),
            ArtifactError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported artifact format version {found} (this reader supports {supported})"
            ),
            ArtifactError::Truncated { needed, got } => {
                write!(f, "truncated artifact: needed {needed} bytes, got {got}")
            }
            ArtifactError::ChecksumMismatch { expected, got } => write!(
                f,
                "artifact checksum mismatch: stored {expected:#018x}, computed {got:#018x}"
            ),
            ArtifactError::KindMismatch { expected, found } => {
                write!(f, "artifact holds kind {found:?}, expected {expected:?}")
            }
            ArtifactError::Malformed(m) => write!(f, "malformed artifact payload: {m}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// FNV-1a 64-bit hash — small, dependency-free, and sensitive to every
/// byte position, which is all a corruption detector needs (this is not a
/// cryptographic integrity guarantee).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Frames `payload` in the container layout described at module level.
pub fn encode(kind: &str, payload: &[u8]) -> Vec<u8> {
    let k = kind.as_bytes();
    let mut out = Vec::with_capacity(32 + k.len() + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(k.len() as u32).to_le_bytes());
    out.extend_from_slice(k);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// A fully bounds-checked view of one artifact's header fields.
///
/// Every field read is explicit: a file that ends mid-field reports
/// [`ArtifactError::Truncated`] with the exact byte count the field
/// needed, never a silently-defaulted value (a short-read checksum that
/// decoded as 0 would turn a torn file into a checksum mismatch at best —
/// or, for an empty payload, a clean load of garbage).
struct Header<'a> {
    kind: &'a str,
    /// Declared payload length.
    plen: usize,
    /// Stored FNV-1a 64 checksum of the payload.
    checksum: u64,
    /// Offset of the first payload byte.
    payload_start: usize,
}

/// Reads the `4`-byte LE `u32` at `at`, or reports how many bytes the
/// field needed.
fn read_u32_at(bytes: &[u8], at: usize) -> Result<u32, ArtifactError> {
    match bytes.get(at..at + 4) {
        Some(b) => Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        None => Err(ArtifactError::Truncated {
            needed: at + 4,
            got: bytes.len(),
        }),
    }
}

/// Reads the `8`-byte LE `u64` at `at`, or reports how many bytes the
/// field needed.
fn read_u64_at(bytes: &[u8], at: usize) -> Result<u64, ArtifactError> {
    match bytes.get(at..at + 8) {
        Some(b) => Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ])),
        None => Err(ArtifactError::Truncated {
            needed: at + 8,
            got: bytes.len(),
        }),
    }
}

/// Parses and validates the container header (magic, version, kind
/// length, kind bytes, payload length, checksum), with an explicit
/// bounds check before every field read.
fn parse_header(bytes: &[u8]) -> Result<Header<'_>, ArtifactError> {
    // Magic: a short prefix of the magic is a truncated artifact; any
    // other prefix is not ours at all.
    match bytes.get(..8) {
        Some(m) if m == MAGIC => {}
        Some(_) => return Err(ArtifactError::BadMagic),
        None if MAGIC.starts_with(bytes) => {
            return Err(ArtifactError::Truncated {
                needed: 8,
                got: bytes.len(),
            })
        }
        None => return Err(ArtifactError::BadMagic),
    }
    let version = read_u32_at(bytes, 8)?;
    if version != FORMAT_VERSION {
        return Err(ArtifactError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let klen = read_u32_at(bytes, 12)? as usize;
    let kind_bytes = bytes.get(16..16 + klen).ok_or(ArtifactError::Truncated {
        needed: 16 + klen,
        got: bytes.len(),
    })?;
    let kind = std::str::from_utf8(kind_bytes)
        .map_err(|_| ArtifactError::Malformed("artifact kind is not utf-8".into()))?;
    let at = 16 + klen;
    let plen = read_u64_at(bytes, at)? as usize;
    let checksum = read_u64_at(bytes, at + 8)?;
    Ok(Header {
        kind,
        plen,
        checksum,
        payload_start: at + 16,
    })
}

/// Verifies the payload bounds and checksum declared by `h`.
fn verify_payload<'a>(bytes: &'a [u8], h: &Header<'_>) -> Result<&'a [u8], ArtifactError> {
    let total = h
        .payload_start
        .checked_add(h.plen)
        .ok_or(ArtifactError::Malformed("payload length overflow".into()))?;
    if bytes.len() < total {
        return Err(ArtifactError::Truncated {
            needed: total,
            got: bytes.len(),
        });
    }
    let payload = &bytes[h.payload_start..total];
    let got = fnv1a64(payload);
    if got != h.checksum {
        return Err(ArtifactError::ChecksumMismatch {
            expected: h.checksum,
            got,
        });
    }
    Ok(payload)
}

/// Verifies the container and returns the payload slice.
///
/// Checks run outside-in — magic, version, kind, declared length,
/// checksum — so the reported error names the *first* broken layer.
pub fn decode<'a>(bytes: &'a [u8], expected_kind: &str) -> Result<&'a [u8], ArtifactError> {
    let h = parse_header(bytes)?;
    if h.kind != expected_kind {
        return Err(ArtifactError::KindMismatch {
            expected: expected_kind.into(),
            found: h.kind.into(),
        });
    }
    verify_payload(bytes, &h)
}

/// Verifies the container (magic, version, length, checksum) and returns
/// the estimator kind tag, without requiring the caller to know it in
/// advance. The model registry uses this to dispatch a reload to the
/// right estimator family's loader.
pub fn peek_kind(bytes: &[u8]) -> Result<String, ArtifactError> {
    let h = parse_header(bytes)?;
    verify_payload(bytes, &h)?;
    Ok(h.kind.to_string())
}

/// Reads an artifact file and returns its verified kind tag.
pub fn read_kind(path: &Path) -> Result<String, ArtifactError> {
    let bytes = std::fs::read(path).map_err(|e| ArtifactError::Io(e.to_string()))?;
    peek_kind(&bytes)
}

/// Writes an encoded artifact via temp file + atomic rename in the target
/// directory: readers see either the old complete file or the new one,
/// never a torn prefix.
pub fn write_atomic(path: &Path, kind: &str, payload: &[u8]) -> Result<(), ArtifactError> {
    let bytes = encode(kind, payload);
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| ArtifactError::Io(format!("no file name in {}", path.display())))?;
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let io = |e: std::io::Error| ArtifactError::Io(e.to_string());
    std::fs::write(&tmp, &bytes).map_err(io)?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        io(e)
    })
}

/// Reads and verifies an artifact, returning the payload bytes.
pub fn read(path: &Path, expected_kind: &str) -> Result<Vec<u8>, ArtifactError> {
    let bytes = std::fs::read(path).map_err(|e| ArtifactError::Io(e.to_string()))?;
    decode(&bytes, expected_kind).map(<[u8]>::to_vec)
}

/// Reads, verifies, and utf-8-decodes a JSON payload.
pub fn read_json_payload(path: &Path, expected_kind: &str) -> Result<String, ArtifactError> {
    let payload = read(path, expected_kind)?;
    String::from_utf8(payload).map_err(|_| ArtifactError::Malformed("payload is not utf-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_payload() {
        let payload = b"{\"weights\":[1.0,2.0]}";
        let bytes = encode("cardest.test", payload);
        assert_eq!(decode(&bytes, "cardest.test"), Ok(&payload[..]));
    }

    #[test]
    fn empty_payload_round_trips() {
        let bytes = encode("k", b"");
        assert_eq!(decode(&bytes, "k"), Ok(&b""[..]));
    }

    #[test]
    fn bad_magic_is_detected_before_anything_else() {
        let mut bytes = encode("k", b"payload");
        bytes[0] ^= 0xFF;
        assert_eq!(decode(&bytes, "k"), Err(ArtifactError::BadMagic));
        assert_eq!(decode(b"garbage!more", "k"), Err(ArtifactError::BadMagic));
    }

    #[test]
    fn version_skew_is_rejected() {
        let mut bytes = encode("k", b"payload");
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert_eq!(
            decode(&bytes, "k"),
            Err(ArtifactError::UnsupportedVersion {
                found: FORMAT_VERSION + 1,
                supported: FORMAT_VERSION,
            })
        );
    }

    #[test]
    fn every_truncation_point_is_loud() {
        let bytes = encode("cardest.test", b"a moderately sized payload");
        for keep in 0..bytes.len() {
            let err = decode(&bytes[..keep], "cardest.test").unwrap_err();
            assert!(
                matches!(
                    err,
                    ArtifactError::Truncated { .. }
                        | ArtifactError::BadMagic
                        | ArtifactError::ChecksumMismatch { .. }
                ),
                "truncation to {keep} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn truncation_at_every_field_boundary_names_the_field_end() {
        // kind "cardest.test" (12 bytes): the header fields end at
        //   magic 8 | version 12 | klen 16 | kind 28 | plen 36 | cksum 44
        let payload = b"0123456789";
        let bytes = encode("cardest.test", payload);
        let field_ends = [8usize, 12, 16, 28, 36, 44];
        assert_eq!(bytes.len(), 44 + payload.len());
        for w in field_ends.windows(2) {
            let (start, end) = (w[0], w[1]);
            for keep in start..end {
                // A cut anywhere inside a field reports exactly the byte
                // count that field needed — never a defaulted value.
                assert_eq!(
                    decode(&bytes[..keep], "cardest.test"),
                    Err(ArtifactError::Truncated {
                        needed: end,
                        got: keep,
                    }),
                    "cut at {keep} inside field ending at {end}"
                );
            }
        }
        // A cut inside the payload reports the full declared extent.
        for keep in 44..bytes.len() {
            assert_eq!(
                decode(&bytes[..keep], "cardest.test"),
                Err(ArtifactError::Truncated {
                    needed: bytes.len(),
                    got: keep,
                })
            );
        }
        // A short magic prefix is "truncated", a wrong one "not ours".
        assert_eq!(
            decode(&MAGIC[..5], "cardest.test"),
            Err(ArtifactError::Truncated { needed: 8, got: 5 })
        );
        assert_eq!(
            decode(b"XARD", "cardest.test"),
            Err(ArtifactError::BadMagic)
        );
    }

    #[test]
    fn short_checksum_read_is_truncated_not_zero() {
        // Regression: the checksum field used to be read with
        // `try_into().unwrap_or([0; 8])`, so a file cut mid-checksum
        // decoded the stored checksum as 0 instead of erroring. With an
        // empty payload (fnv1a64(b"") != 0 so the mismatch still fired)
        // the failure mode was a misleading ChecksumMismatch; the honest
        // answer is Truncated.
        let bytes = encode("k", b"");
        let cut = &bytes[..bytes.len() - 3]; // mid-checksum
        assert!(matches!(
            decode(cut, "k"),
            Err(ArtifactError::Truncated { .. })
        ));
    }

    #[test]
    fn peek_kind_returns_the_kind_only_after_full_verification() {
        let bytes = encode("cardest.gl", b"payload");
        assert_eq!(peek_kind(&bytes).unwrap(), "cardest.gl");
        // A bit-flipped payload must not yield a kind: the registry would
        // otherwise dispatch a corrupt artifact to a loader.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(
            peek_kind(&flipped),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            peek_kind(&bytes[..bytes.len() - 2]),
            Err(ArtifactError::Truncated { .. })
        ));
    }

    #[test]
    fn read_kind_reads_from_disk() {
        let dir =
            std::env::temp_dir().join(format!("cardest-artifact-kind-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.cardest");
        write_atomic(&path, "cardest.mlp", b"{}").unwrap();
        assert_eq!(read_kind(&path).unwrap(), "cardest.mlp");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn payload_bit_flip_fails_the_checksum() {
        let payload = b"0123456789abcdef";
        let bytes = encode("k", payload);
        let payload_start = bytes.len() - payload.len();
        for i in payload_start..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x04;
            assert!(matches!(
                decode(&flipped, "k"),
                Err(ArtifactError::ChecksumMismatch { .. })
            ));
        }
    }

    #[test]
    fn kind_mismatch_names_both_sides() {
        let bytes = encode("cardest.gl", b"x");
        assert_eq!(
            decode(&bytes, "cardest.mlp"),
            Err(ArtifactError::KindMismatch {
                expected: "cardest.mlp".into(),
                found: "cardest.gl".into(),
            })
        );
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn atomic_write_then_read_round_trips() {
        let dir = std::env::temp_dir().join(format!("cardest-artifact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.cardest");
        write_atomic(&path, "k", b"hello").unwrap();
        assert_eq!(read(&path, "k").unwrap(), b"hello");
        // Overwrite is atomic too — and no temp droppings remain.
        write_atomic(&path, "k", b"world").unwrap();
        assert_eq!(read(&path, "k").unwrap(), b"world");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_reports_io() {
        let err = read(Path::new("/nonexistent/definitely/not/here"), "k").unwrap_err();
        assert!(matches!(err, ArtifactError::Io(_)));
    }
}
