//! Mini-batch scheduling utilities shared by every training loop in the
//! workspace (Algorithms 1 and 2 of the paper both iterate epochs over
//! shuffled mini-batches).

use crate::loss::{weighted_bce_loss, HybridLoss};
use crate::net::BranchNet;
use crate::optim::{Adam, Optimizer};
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Yields shuffled index mini-batches for one epoch.
///
/// The caller owns the sample storage; batches are index lists so that
/// training loops can gather whatever per-sample features they need (query
/// vectors, thresholds, distance vectors, per-segment labels) without
/// copying the dataset.
pub struct BatchIter {
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl BatchIter {
    /// Creates a shuffled epoch over `n` samples.
    pub fn new<R: Rng>(rng: &mut R, n: usize, batch_size: usize) -> Self {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        BatchIter {
            order,
            batch_size: batch_size.max(1),
            cursor: 0,
        }
    }

    /// Number of batches in the epoch.
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }
}

impl Iterator for BatchIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let batch = self.order[self.cursor..end].to_vec();
        self.cursor = end;
        Some(batch)
    }
}

/// Early-stopping tracker: stops when the validation error has not improved
/// by `min_rel_improvement` for `patience` consecutive checks. Algorithm 3
/// uses a 2% relative-improvement criterion; training loops reuse this.
#[derive(Debug, Clone)]
pub struct EarlyStopper {
    best: f32,
    stale: usize,
    patience: usize,
    min_rel_improvement: f32,
}

impl EarlyStopper {
    pub fn new(patience: usize, min_rel_improvement: f32) -> Self {
        EarlyStopper {
            best: f32::INFINITY,
            stale: 0,
            patience,
            min_rel_improvement,
        }
    }

    /// Records a validation error; returns `true` when training should stop.
    pub fn should_stop(&mut self, error: f32) -> bool {
        if !error.is_finite() {
            self.stale += 1;
            return self.stale > self.patience;
        }
        let improved = if self.best.is_finite() {
            (self.best - error) / self.best.max(1e-12) >= self.min_rel_improvement
        } else {
            true
        };
        if improved {
            self.best = error;
            self.stale = 0;
        } else {
            self.stale += 1;
        }
        self.stale > self.patience
    }

    pub fn best(&self) -> f32 {
        self.best
    }
}

/// Shared configuration for the two training loops below (Algorithms 1
/// and 2 of the paper both run epoch/mini-batch gradient descent).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f32,
    /// λ in the hybrid loss (regression only).
    pub lambda: f32,
    /// Multiplied into the learning rate after each epoch.
    pub lr_decay: f32,
    /// Stop when the epoch loss plateaus for this many epochs (relative
    /// improvement below 2%, matching Algorithm 3's criterion).
    pub patience: usize,
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 40,
            batch_size: 64,
            learning_rate: 1e-3,
            lambda: 0.5,
            lr_decay: 0.98,
            patience: 5,
            seed: 0,
        }
    }
}

/// Summary of one training run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainReport {
    pub epochs_run: usize,
    pub final_loss: f32,
}

/// Trains a [`BranchNet`] regressor with the hybrid MAPE + λ·Q-error loss
/// of §3.1 (Algorithm 1). The network's single output is interpreted as
/// `ln card`.
///
/// One regression mini-batch: per-branch input matrices plus the true
/// cardinalities.
pub type RegressionBatch = (Vec<Matrix>, Vec<f32>);

/// One classifier mini-batch: per-branch inputs plus the `B × n_segments`
/// 0/1 label matrix `R` and min-max weight matrix `ε`.
pub type ClassifierBatch = (Vec<Matrix>, Matrix, Matrix);

/// `build_batch` maps a shuffled index mini-batch to the per-branch input
/// matrices and the true cardinalities; the caller owns all feature
/// construction (distance vectors, thresholds, …).
pub fn train_branch_regression(
    net: &mut BranchNet,
    n_samples: usize,
    build_batch: &mut dyn FnMut(&[usize]) -> RegressionBatch,
    cfg: &TrainConfig,
) -> TrainReport {
    let loss_fn = HybridLoss {
        lambda: cfg.lambda,
        ..HybridLoss::default()
    };
    let mut opt = Adam::new(cfg.learning_rate);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7EA1_0001);
    let mut stopper = EarlyStopper::new(cfg.patience, 0.02);
    let mut epoch_loss = f32::INFINITY;
    let mut epochs_run = 0;
    for _ in 0..cfg.epochs {
        epochs_run += 1;
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for idx in BatchIter::new(&mut rng, n_samples, cfg.batch_size) {
            let (inputs, cards) = build_batch(&idx);
            let refs: Vec<&Matrix> = inputs.iter().collect();
            let pred = net.forward(&refs);
            debug_assert_eq!(pred.cols(), 1, "regressor must have one output");
            let (loss, grad) = loss_fn.eval(pred.as_slice(), &cards);
            let gmat = Matrix::from_vec(pred.rows(), 1, grad);
            net.backward(&gmat);
            opt.step(&mut net.params_mut());
            net.apply_constraints();
            total += loss as f64;
            batches += 1;
        }
        epoch_loss = (total / batches.max(1) as f64) as f32;
        opt.set_learning_rate(opt.learning_rate() * cfg.lr_decay);
        if stopper.should_stop(epoch_loss) {
            break;
        }
    }
    TrainReport {
        epochs_run,
        final_loss: epoch_loss,
    }
}

/// Trains the global discriminative model (Algorithm 2): the network's
/// outputs are per-segment selection probabilities, trained with the
/// cardinality-weighted BCE of §3.3.
///
/// `build_batch` returns the per-branch inputs plus two `B × n_segments`
/// matrices: the 0/1 labels `R` and the min-max weights `ε`.
pub fn train_global_classifier(
    net: &mut BranchNet,
    n_samples: usize,
    build_batch: &mut dyn FnMut(&[usize]) -> ClassifierBatch,
    cfg: &TrainConfig,
) -> TrainReport {
    let mut opt = Adam::new(cfg.learning_rate);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7EA1_0002);
    let mut stopper = EarlyStopper::new(cfg.patience, 0.02);
    let mut epoch_loss = f32::INFINITY;
    let mut epochs_run = 0;
    for _ in 0..cfg.epochs {
        epochs_run += 1;
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for idx in BatchIter::new(&mut rng, n_samples, cfg.batch_size) {
            let (inputs, labels, weights) = build_batch(&idx);
            let refs: Vec<&Matrix> = inputs.iter().collect();
            let probs = net.forward(&refs);
            debug_assert_eq!(probs.cols(), labels.cols(), "one probability per segment");
            let (loss, grad) =
                weighted_bce_loss(probs.as_slice(), labels.as_slice(), weights.as_slice());
            let gmat = Matrix::from_vec(probs.rows(), probs.cols(), grad);
            net.backward(&gmat);
            opt.step(&mut net.params_mut());
            net.apply_constraints();
            total += loss as f64;
            batches += 1;
        }
        epoch_loss = (total / batches.max(1) as f64) as f32;
        opt.set_learning_rate(opt.learning_rate() * cfg.lr_decay);
        if stopper.should_stop(epoch_loss) {
            break;
        }
    }
    TrainReport {
        epochs_run,
        final_loss: epoch_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batches_cover_every_index_exactly_once() {
        let mut rng = StdRng::seed_from_u64(1);
        let it = BatchIter::new(&mut rng, 10, 3);
        assert_eq!(it.num_batches(), 4);
        let mut seen: Vec<usize> = it.flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn batch_iter_is_deterministic_per_seed() {
        let a: Vec<Vec<usize>> = BatchIter::new(&mut StdRng::seed_from_u64(7), 8, 4).collect();
        let b: Vec<Vec<usize>> = BatchIter::new(&mut StdRng::seed_from_u64(7), 8, 4).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn early_stopper_stops_on_plateau() {
        let mut es = EarlyStopper::new(2, 0.02);
        assert!(!es.should_stop(1.0));
        assert!(!es.should_stop(0.5)); // big improvement
        assert!(!es.should_stop(0.499)); // < 2% improvement → stale 1
        assert!(!es.should_stop(0.498)); // stale 2
        assert!(es.should_stop(0.498)); // stale 3 > patience
        assert_eq!(es.best(), 0.5);
    }

    #[test]
    fn early_stopper_tolerates_nan() {
        let mut es = EarlyStopper::new(1, 0.02);
        assert!(!es.should_stop(f32::NAN));
        assert!(es.should_stop(f32::NAN));
    }

    use crate::activation::Activation;
    use crate::layers::{Dense, Layer, ShiftSigmoid};
    use crate::net::{BranchNet, Sequential};

    /// A tiny synthetic regression: card = round(exp(2·x₀ + τ)), learnable
    /// from (x, τ) pairs. Checks the Algorithm-1 loop converges.
    #[test]
    fn branch_regression_learns_a_simple_cardinality_function() {
        let mut rng = StdRng::seed_from_u64(42);
        use rand::Rng;
        let n = 256;
        let xs: Vec<[f32; 2]> = (0..n)
            .map(|_| [rng.gen_range(0.0..1.5f32), rng.gen_range(0.0..1.5f32)])
            .collect();
        let taus: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..1.0f32)).collect();
        let cards: Vec<f32> = xs
            .iter()
            .zip(&taus)
            .map(|(x, t)| (2.0 * x[0] + t).exp().round().max(1.0))
            .collect();

        let mut init = StdRng::seed_from_u64(1);
        let bq = Sequential::new(vec![Layer::Dense(Dense::new(
            &mut init,
            2,
            8,
            Activation::Relu,
        ))]);
        let bt = Sequential::new(vec![Layer::Dense(Dense::new_nonneg(
            &mut init,
            1,
            4,
            Activation::Relu,
        ))]);
        let head = Sequential::new(vec![
            Layer::Dense(Dense::new(&mut init, 12, 8, Activation::Relu)),
            Layer::Dense(Dense::new(&mut init, 8, 1, Activation::Identity)),
        ]);
        let mut net = BranchNet::new(vec![bq, bt], vec![2, 1], head);

        let mut build = |idx: &[usize]| {
            let xq = Matrix::from_rows(&idx.iter().map(|&i| &xs[i][..]).collect::<Vec<_>>());
            let xt = Matrix::from_vec(idx.len(), 1, idx.iter().map(|&i| taus[i]).collect());
            let c: Vec<f32> = idx.iter().map(|&i| cards[i]).collect();
            (vec![xq, xt], c)
        };
        let cfg = TrainConfig {
            epochs: 80,
            batch_size: 32,
            learning_rate: 5e-3,
            ..Default::default()
        };
        let report = train_branch_regression(&mut net, n, &mut build, &cfg);
        assert!(report.final_loss.is_finite());

        // Mean Q-error on the training points should be small.
        let (inputs, cards_all) = build(&(0..n).collect::<Vec<_>>());
        let refs: Vec<&Matrix> = inputs.iter().collect();
        let pred = net.forward(&refs);
        let mean_q: f32 = pred
            .as_slice()
            .iter()
            .zip(&cards_all)
            .map(|(&p, &c)| crate::metrics::q_error(p.exp(), c))
            .sum::<f32>()
            / n as f32;
        assert!(mean_q < 2.0, "mean Q-error {mean_q} after training");
    }

    /// The Algorithm-2 loop must learn a linearly separable segment
    /// selection task.
    #[test]
    fn global_classifier_learns_separable_selection() {
        let mut rng = StdRng::seed_from_u64(43);
        use rand::Rng;
        let n = 200;
        let n_segs = 4;
        // Feature: x ∈ R⁴; label for segment i is 1 iff x[i] > 0.
        let xs: Vec<[f32; 4]> = (0..n)
            .map(|_| std::array::from_fn(|_| rng.gen_range(-1.0..1.0f32)))
            .collect();
        let mut init = StdRng::seed_from_u64(2);
        let b = Sequential::new(vec![Layer::Dense(Dense::new(
            &mut init,
            4,
            8,
            Activation::Tanh,
        ))]);
        let head = Sequential::new(vec![
            Layer::Dense(Dense::new(&mut init, 8, n_segs, Activation::Identity)),
            Layer::ShiftSigmoid(ShiftSigmoid::new(n_segs)),
        ]);
        let mut net = BranchNet::new(vec![b], vec![4], head);

        let mut build = |idx: &[usize]| {
            let x = Matrix::from_rows(&idx.iter().map(|&i| &xs[i][..]).collect::<Vec<_>>());
            let mut labels = Matrix::zeros(idx.len(), n_segs);
            for (r, &i) in idx.iter().enumerate() {
                for (s, &v) in xs[i][..n_segs].iter().enumerate() {
                    labels.set(r, s, if v > 0.0 { 1.0 } else { 0.0 });
                }
            }
            let weights = Matrix::zeros(idx.len(), n_segs);
            (vec![x], labels, weights)
        };
        let cfg = TrainConfig {
            epochs: 120,
            batch_size: 32,
            learning_rate: 1e-2,
            ..Default::default()
        };
        train_global_classifier(&mut net, n, &mut build, &cfg);

        // Accuracy at the 0.5 cut must be high.
        let (inputs, labels, _) = build(&(0..n).collect::<Vec<_>>());
        let refs: Vec<&Matrix> = inputs.iter().collect();
        let probs = net.forward(&refs);
        let mut correct = 0usize;
        for i in 0..probs.as_slice().len() {
            let pred = probs.as_slice()[i] > 0.5;
            if pred == (labels.as_slice()[i] > 0.5) {
                correct += 1;
            }
        }
        let acc = correct as f32 / probs.as_slice().len() as f32;
        assert!(acc > 0.9, "selection accuracy {acc}");
    }
}
