//! Mini-batch scheduling utilities shared by every training loop in the
//! workspace (Algorithms 1 and 2 of the paper both iterate epochs over
//! shuffled mini-batches).
//!
//! # Parallelism and determinism
//!
//! Both training loops are data-parallel: every mini-batch is split into
//! fixed-size row shards ([`GRAD_SHARD_ROWS`]) whose gradients are computed
//! independently (on per-shard model replicas when more than one thread is
//! available) and reduced into the master network in ascending shard order.
//! Because layer backward passes *accumulate* into zeroed gradient buffers
//! and the shard partition depends only on the batch size — never on the
//! thread count — the summed gradient, and therefore the trained weights,
//! are bit-identical for any `threads` setting given the same seed.
//!
//! # Failure recovery
//!
//! The loops snapshot a lightweight [`Checkpoint`] (weights + optimizer
//! state + epoch) every [`TrainConfig::checkpoint_every`] epochs. When a
//! batch produces a non-finite loss or an exploding gradient norm, the
//! epoch is abandoned *before* the optimizer step: weights and optimizer
//! roll back to the last checkpoint, the learning rate is halved, and
//! training resumes from the checkpointed epoch. Recoveries are surfaced in
//! [`TrainReport::recoveries`]; if more than
//! [`TrainConfig::max_recoveries`] rollbacks happen, training stops at the
//! checkpoint and sets [`TrainReport::diverged`] instead of silently
//! returning a garbage model.

use crate::loss::{weighted_bce_partial, HybridLoss};
use crate::net::BranchNet;
use crate::optim::{Adam, Optimizer};
use crate::parallel::resolve_threads;
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Rows per gradient shard. The shard partition of a mini-batch is derived
/// from this constant and the batch size alone, so the reduction order (and
/// the resulting weights) never depend on how many threads execute the
/// shards.
pub const GRAD_SHARD_ROWS: usize = 16;

/// Yields shuffled index mini-batches for one epoch.
///
/// The caller owns the sample storage; batches are index lists so that
/// training loops can gather whatever per-sample features they need (query
/// vectors, thresholds, distance vectors, per-segment labels) without
/// copying the dataset.
pub struct BatchIter {
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl BatchIter {
    /// Creates a shuffled epoch over `n` samples.
    pub fn new<R: Rng>(rng: &mut R, n: usize, batch_size: usize) -> Self {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        BatchIter {
            order,
            batch_size: batch_size.max(1),
            cursor: 0,
        }
    }

    /// Number of batches in the epoch.
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }
}

impl Iterator for BatchIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let batch = self.order[self.cursor..end].to_vec();
        self.cursor = end;
        Some(batch)
    }
}

/// Early-stopping tracker used by every training loop (Algorithm 3 stops on
/// a 2% relative-improvement criterion).
///
/// # Patience semantics
///
/// `patience` is the number of *consecutive* non-improving checks that are
/// tolerated: the stopper returns `true` on the `patience + 1`-th stale
/// check in a row (so `patience = 0` stops on the first plateau). A check
/// counts as an improvement only when the error drops by at least
/// `min_rel_improvement` relative to the best error seen so far; improving
/// checks reset the stale counter.
///
/// A non-finite error (NaN/Inf) stops immediately: it can never improve the
/// best error, and a model emitting NaN will not heal by training further —
/// recoverable divergence is the trainer's checkpoint guard's job, which
/// runs before the stopper ever sees a loss.
#[derive(Debug, Clone)]
pub struct EarlyStopper {
    best: f32,
    stale: usize,
    patience: usize,
    min_rel_improvement: f32,
}

impl EarlyStopper {
    pub fn new(patience: usize, min_rel_improvement: f32) -> Self {
        EarlyStopper {
            best: f32::INFINITY,
            stale: 0,
            patience,
            min_rel_improvement,
        }
    }

    /// Records a validation error; returns `true` when training should stop.
    pub fn should_stop(&mut self, error: f32) -> bool {
        if !error.is_finite() {
            // Exhaust the patience on first sight — see the struct docs.
            self.stale = self.patience + 1;
            return true;
        }
        let improved = if self.best.is_finite() {
            (self.best - error) / self.best.max(1e-12) >= self.min_rel_improvement
        } else {
            true
        };
        if improved {
            self.best = error;
            self.stale = 0;
        } else {
            self.stale += 1;
        }
        self.stale > self.patience
    }

    pub fn best(&self) -> f32 {
        self.best
    }
}

/// Shared configuration for the two training loops below (Algorithms 1
/// and 2 of the paper both run epoch/mini-batch gradient descent).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f32,
    /// λ in the hybrid loss (regression only).
    pub lambda: f32,
    /// Multiplied into the learning rate after each epoch.
    pub lr_decay: f32,
    /// Stop when the epoch loss plateaus for this many epochs (relative
    /// improvement below 2%, matching Algorithm 3's criterion).
    pub patience: usize,
    pub seed: u64,
    /// Worker threads for data-parallel gradient shards; `0` defers to the
    /// process-wide knob ([`crate::parallel::set_train_threads`]). The
    /// trained weights are identical for every value — see the module docs.
    pub threads: usize,
    /// Take a recovery [`Checkpoint`] every this many completed epochs.
    pub checkpoint_every: usize,
    /// A gradient norm above this (or any non-finite loss/gradient) counts
    /// as divergence and triggers a rollback to the last checkpoint.
    pub max_grad_norm: f32,
    /// Give up (and report [`TrainReport::diverged`]) after this many
    /// rollbacks.
    pub max_recoveries: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 40,
            batch_size: 64,
            learning_rate: 1e-3,
            lambda: 0.5,
            lr_decay: 0.98,
            patience: 5,
            seed: 0,
            threads: 0,
            checkpoint_every: 5,
            max_grad_norm: 1e6,
            max_recoveries: 3,
        }
    }
}

/// Summary of one training run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainReport {
    /// Epochs attempted, including any that were rolled back.
    pub epochs_run: usize,
    pub final_loss: f32,
    /// Checkpoint rollbacks taken after a non-finite loss or an exploding
    /// gradient (each halves the learning rate before resuming).
    pub recoveries: usize,
    /// Training hit [`TrainConfig::max_recoveries`] and stopped at the last
    /// checkpoint instead of finishing the schedule.
    pub diverged: bool,
}

/// A lightweight training checkpoint: a weight snapshot, the optimizer
/// state, and the epoch it was taken at. Taken every
/// [`TrainConfig::checkpoint_every`] epochs and restored by the divergence
/// guard.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    params: Vec<Vec<f32>>,
    opt: Adam,
    epoch: usize,
}

impl Checkpoint {
    pub fn take(net: &BranchNet, opt: &Adam, epoch: usize) -> Self {
        Checkpoint {
            params: net.snapshot_params(),
            opt: opt.clone(),
            epoch,
        }
    }

    /// Restores the snapshot into `net` and `opt`.
    pub fn restore(&self, net: &mut BranchNet, opt: &mut Adam) {
        net.restore_params(&self.params);
        *opt = self.opt.clone();
    }

    pub fn epoch(&self) -> usize {
        self.epoch
    }
}

/// Trains a [`BranchNet`] regressor with the hybrid MAPE + λ·Q-error loss
/// of §3.1 (Algorithm 1). The network's single output is interpreted as
/// `ln card`.
///
/// One regression mini-batch: per-branch input matrices plus the true
/// cardinalities.
pub type RegressionBatch = (Vec<Matrix>, Vec<f32>);

/// One classifier mini-batch: per-branch inputs plus the `B × n_segments`
/// 0/1 label matrix `R` and min-max weight matrix `ε`.
pub type ClassifierBatch = (Vec<Matrix>, Matrix, Matrix);

/// The fixed shard partition of a `rows`-sample batch: contiguous
/// [`GRAD_SHARD_ROWS`]-row ranges, independent of the thread count.
fn shard_ranges(rows: usize) -> Vec<(usize, usize)> {
    (0..rows)
        .step_by(GRAD_SHARD_ROWS)
        .map(|r0| (r0, (r0 + GRAD_SHARD_ROWS).min(rows)))
        .collect()
}

/// Copies rows `r0..r1` of `m` into an owned matrix.
fn rows_of(m: &Matrix, r0: usize, r1: usize) -> Matrix {
    let c = m.cols();
    Matrix::from_vec(r1 - r0, c, m.as_slice()[r0 * c..r1 * c].to_vec())
}

/// Squared L2 norm of the accumulated gradient, summed in deterministic
/// parameter order.
fn grad_norm_sq(net: &mut BranchNet) -> f64 {
    net.params_mut()
        .iter()
        .flat_map(|p| p.grads.iter())
        .map(|&g| g as f64 * g as f64)
        .sum()
}

/// Adds `rep`'s accumulated gradients into `net`'s (one f32 add per scalar)
/// and zeroes `rep`'s accumulators for the next shard/batch.
/// Per-shard loss evaluation: `(pred, r0, r1)` → the unnormalized f64 loss
/// sum over rows `r0..r1` plus per-sample gradients already averaged over
/// the full batch.
type ShardLoss<'a> = dyn Fn(&Matrix, usize, usize) -> (f64, Vec<f32>) + Sync + 'a;

/// One mini-batch step: `(net, replicas, threads, idx)` → mean batch loss.
type ForwardBackward<'a> =
    dyn FnMut(&mut BranchNet, &mut Vec<BranchNet>, usize, &[usize]) -> f64 + 'a;

fn reduce_grads(net: &mut BranchNet, rep: &mut BranchNet) {
    let mut master = net.params_mut();
    let mut rp = rep.params_mut();
    for (mp, r) in master.iter_mut().zip(rp.iter_mut()) {
        for (g, rg) in mp.grads.iter_mut().zip(r.grads.iter_mut()) {
            *g += *rg;
            *rg = 0.0;
        }
    }
}

/// One data-parallel forward/backward over a mini-batch.
///
/// The batch is cut into the fixed shard partition of [`shard_ranges`];
/// `shard_loss(pred, r0, r1)` must return the unnormalized f64 loss sum
/// over the shard plus per-sample gradients already averaged over the
/// *full* batch (see [`HybridLoss::eval_partial`]). Every shard's gradient
/// is accumulated into a zeroed replica buffer and then reduced into `net`
/// with exactly one add per scalar, in ascending shard order — so the
/// floating-point association of the summed gradient is fixed and the
/// result is bit-identical for any `threads`. Returns the f64 loss sum
/// over the whole batch.
// `expect` propagates shard-worker panics (`join()` idiom); the replica
// pool is sized to `threads` before either branch runs.
#[allow(clippy::expect_used)]
fn sharded_forward_backward(
    net: &mut BranchNet,
    replicas: &mut Vec<BranchNet>,
    threads: usize,
    inputs: &[Matrix],
    rows: usize,
    shard_loss: &ShardLoss<'_>,
) -> f64 {
    let shards = shard_ranges(rows);
    let run_shard = |model: &mut BranchNet, r0: usize, r1: usize| -> f64 {
        let shard_inputs: Vec<Matrix> = inputs.iter().map(|m| rows_of(m, r0, r1)).collect();
        let refs: Vec<&Matrix> = shard_inputs.iter().collect();
        let pred = model.forward(&refs);
        let (loss_sum, grad) = shard_loss(&pred, r0, r1);
        let gmat = Matrix::from_vec(pred.rows(), pred.cols(), grad);
        model.backward(&gmat);
        loss_sum
    };
    if shards.len() <= 1 {
        // A single shard accumulates straight into `net` — the same
        // association for every thread count.
        let mut total = 0.0f64;
        for &(r0, r1) in &shards {
            total += run_shard(net, r0, r1);
        }
        return total;
    }
    let n_replicas = if threads <= 1 { 1 } else { shards.len() };
    while replicas.len() < n_replicas {
        let mut r = net.clone();
        r.zero_grads();
        replicas.push(r);
    }
    for r in replicas[..n_replicas].iter_mut() {
        r.copy_params_from(net);
    }
    if threads <= 1 {
        // One replica walks the shards in order; reducing after each shard
        // gives the same per-scalar association ((0 + c₀) + c₁) + … as the
        // parallel reduction below.
        // cardest-lint: allow(panic-path): replicas has exactly `threads >= 1` entries by construction a few lines up
        let (rep, _) = replicas.split_first_mut().expect("replica exists");
        let mut total = 0.0f64;
        for &(r0, r1) in &shards {
            total += run_shard(rep, r0, r1);
            reduce_grads(net, rep);
        }
        return total;
    }
    let workers = threads.min(shards.len());
    let per = shards.len().div_ceil(workers);
    let mut shard_losses = vec![0.0f64; shards.len()];
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (w, (reps, ranges)) in replicas[..shards.len()]
            .chunks_mut(per)
            .zip(shards.chunks(per))
            .enumerate()
        {
            let run_shard = &run_shard;
            handles.push((
                w,
                s.spawn(move || {
                    reps.iter_mut()
                        .zip(ranges)
                        .map(|(rep, &(r0, r1))| run_shard(rep, r0, r1))
                        .collect::<Vec<f64>>()
                }),
            ));
        }
        for (w, h) in handles {
            // cardest-lint: allow(panic-path): standard join() idiom — re-raise a worker panic on the caller thread
            let losses = h.join().expect("gradient shard worker panicked");
            for (k, ls) in losses.into_iter().enumerate() {
                shard_losses[w * per + k] = ls;
            }
        }
    });
    // Fixed-order reduction: shard 0, then 1, then 2, … regardless of which
    // worker computed what. Replica gradients are zeroed for the next batch.
    for rep in replicas[..shards.len()].iter_mut() {
        reduce_grads(net, rep);
    }
    // Same summation order as the single-thread path above.
    shard_losses.iter().sum()
}

/// Per-epoch shuffle seed. Rollback re-runs an epoch with the exact RNG it
/// had the first time, so recovery stays deterministic.
fn epoch_rng_seed(base: u64, epoch: usize) -> u64 {
    base ^ (epoch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The shared epoch/checkpoint/divergence loop behind both trainers.
///
/// `forward_backward(net, replicas, threads, idx)` computes the sharded
/// forward/backward for one mini-batch and returns the mean batch loss;
/// this loop owns the optimizer, the divergence guard, and early stopping.
fn train_loop(
    net: &mut BranchNet,
    n_samples: usize,
    cfg: &TrainConfig,
    seed_salt: u64,
    forward_backward: &mut ForwardBackward<'_>,
) -> TrainReport {
    let threads = resolve_threads(cfg.threads);
    let mut replicas: Vec<BranchNet> = Vec::new();
    let mut opt = Adam::new(cfg.learning_rate);
    let mut stopper = EarlyStopper::new(cfg.patience, 0.02);
    let mut epoch_loss = f32::INFINITY;
    let mut epochs_run = 0usize;
    let mut recoveries = 0usize;
    let mut diverged = false;
    // Cumulative LR cut applied on top of the checkpointed LR; compounds
    // across repeated rollbacks to the same checkpoint and resets when a
    // fresh checkpoint is taken.
    let mut lr_cut = 1.0f32;
    let ckpt_every = cfg.checkpoint_every.max(1);
    let max_grad_norm_sq = (cfg.max_grad_norm as f64) * (cfg.max_grad_norm as f64);
    let mut ckpt = Checkpoint::take(net, &opt, 0);
    let mut epoch = 0usize;
    while epoch < cfg.epochs {
        epochs_run += 1;
        let mut rng = StdRng::seed_from_u64(epoch_rng_seed(cfg.seed ^ seed_salt, epoch));
        let mut total = 0.0f64;
        let mut batches = 0usize;
        let mut bad = false;
        for idx in BatchIter::new(&mut rng, n_samples, cfg.batch_size) {
            let batch_loss = forward_backward(net, &mut replicas, threads, &idx);
            let gn2 = grad_norm_sq(net);
            if !batch_loss.is_finite() || !gn2.is_finite() || gn2 > max_grad_norm_sq {
                bad = true;
                break;
            }
            opt.step(&mut net.params_mut());
            net.apply_constraints();
            total += batch_loss;
            batches += 1;
        }
        if bad {
            recoveries += 1;
            net.zero_grads();
            ckpt.restore(net, &mut opt);
            if recoveries > cfg.max_recoveries {
                diverged = true;
                break;
            }
            lr_cut *= 0.5;
            opt.set_learning_rate(opt.learning_rate() * lr_cut);
            epoch = ckpt.epoch();
            continue;
        }
        epoch_loss = (total / batches.max(1) as f64) as f32;
        opt.set_learning_rate(opt.learning_rate() * cfg.lr_decay);
        epoch += 1;
        if stopper.should_stop(epoch_loss) {
            break;
        }
        if epoch < cfg.epochs && epoch % ckpt_every == 0 {
            ckpt = Checkpoint::take(net, &opt, epoch);
            lr_cut = 1.0;
        }
    }
    TrainReport {
        epochs_run,
        final_loss: epoch_loss,
        recoveries,
        diverged,
    }
}

/// `build_batch` maps a shuffled index mini-batch to the per-branch input
/// matrices and the true cardinalities; the caller owns all feature
/// construction (distance vectors, thresholds, …).
pub fn train_branch_regression(
    net: &mut BranchNet,
    n_samples: usize,
    build_batch: &mut dyn FnMut(&[usize]) -> RegressionBatch,
    cfg: &TrainConfig,
) -> TrainReport {
    let loss_fn = HybridLoss {
        lambda: cfg.lambda,
        ..HybridLoss::default()
    };
    train_loop(
        net,
        n_samples,
        cfg,
        0x7EA1_0001,
        &mut |net, replicas, threads, idx| {
            let (inputs, cards) = build_batch(idx);
            let rows = idx.len();
            let shard_loss = |pred: &Matrix, r0: usize, r1: usize| {
                debug_assert_eq!(pred.cols(), 1, "regressor must have one output");
                loss_fn.eval_partial(pred.as_slice(), &cards[r0..r1], rows)
            };
            let sum = sharded_forward_backward(net, replicas, threads, &inputs, rows, &shard_loss);
            sum / rows.max(1) as f64
        },
    )
}

/// Trains the global discriminative model (Algorithm 2): the network's
/// outputs are per-segment selection probabilities, trained with the
/// cardinality-weighted BCE of §3.3.
///
/// `build_batch` returns the per-branch inputs plus two `B × n_segments`
/// matrices: the 0/1 labels `R` and the min-max weights `ε`.
pub fn train_global_classifier(
    net: &mut BranchNet,
    n_samples: usize,
    build_batch: &mut dyn FnMut(&[usize]) -> ClassifierBatch,
    cfg: &TrainConfig,
) -> TrainReport {
    train_loop(
        net,
        n_samples,
        cfg,
        0x7EA1_0002,
        &mut |net, replicas, threads, idx| {
            let (inputs, labels, weights) = build_batch(idx);
            let rows = idx.len();
            let segs = labels.cols();
            let norm = rows * segs;
            let shard_loss = |probs: &Matrix, r0: usize, r1: usize| {
                debug_assert_eq!(probs.cols(), segs, "one probability per segment");
                weighted_bce_partial(
                    probs.as_slice(),
                    &labels.as_slice()[r0 * segs..r1 * segs],
                    &weights.as_slice()[r0 * segs..r1 * segs],
                    norm,
                )
            };
            let sum = sharded_forward_backward(net, replicas, threads, &inputs, rows, &shard_loss);
            sum / norm.max(1) as f64
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batches_cover_every_index_exactly_once() {
        let mut rng = StdRng::seed_from_u64(1);
        let it = BatchIter::new(&mut rng, 10, 3);
        assert_eq!(it.num_batches(), 4);
        let mut seen: Vec<usize> = it.flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn batch_iter_is_deterministic_per_seed() {
        let a: Vec<Vec<usize>> = BatchIter::new(&mut StdRng::seed_from_u64(7), 8, 4).collect();
        let b: Vec<Vec<usize>> = BatchIter::new(&mut StdRng::seed_from_u64(7), 8, 4).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn early_stopper_stops_on_plateau() {
        let mut es = EarlyStopper::new(2, 0.02);
        assert!(!es.should_stop(1.0));
        assert!(!es.should_stop(0.5)); // big improvement
        assert!(!es.should_stop(0.499)); // < 2% improvement → stale 1
        assert!(!es.should_stop(0.498)); // stale 2
        assert!(es.should_stop(0.498)); // stale 3 > patience
        assert_eq!(es.best(), 0.5);
    }

    #[test]
    fn early_stopper_stops_immediately_on_non_finite_loss() {
        // Even with patience to spare, the first NaN must stop training:
        // NaN can never improve the best error, and recoverable divergence
        // is handled by the checkpoint guard before the stopper runs.
        let mut es = EarlyStopper::new(3, 0.02);
        assert!(!es.should_stop(1.0));
        assert!(es.should_stop(f32::NAN));
        let mut es = EarlyStopper::new(1, 0.02);
        assert!(es.should_stop(f32::INFINITY));
    }

    use crate::activation::Activation;
    use crate::layers::{Dense, Layer, ShiftSigmoid};
    use crate::net::{BranchNet, Sequential};

    fn synth_regression(n: usize) -> (Vec<[f32; 2]>, Vec<f32>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(42);
        use rand::Rng;
        let xs: Vec<[f32; 2]> = (0..n)
            .map(|_| [rng.gen_range(0.0..1.5f32), rng.gen_range(0.0..1.5f32)])
            .collect();
        let taus: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..1.0f32)).collect();
        let cards: Vec<f32> = xs
            .iter()
            .zip(&taus)
            .map(|(x, t)| {
                crate::metrics::decode_log_card(2.0 * x[0] + t, f32::MAX)
                    .round()
                    .max(1.0)
            })
            .collect();
        (xs, taus, cards)
    }

    fn small_regressor(seed: u64) -> BranchNet {
        let mut init = StdRng::seed_from_u64(seed);
        let bq = Sequential::new(vec![Layer::Dense(Dense::new(
            &mut init,
            2,
            8,
            Activation::Relu,
        ))]);
        let bt = Sequential::new(vec![Layer::Dense(Dense::new_nonneg(
            &mut init,
            1,
            4,
            Activation::Relu,
        ))]);
        let head = Sequential::new(vec![
            Layer::Dense(Dense::new(&mut init, 12, 8, Activation::Relu)),
            Layer::Dense(Dense::new(&mut init, 8, 1, Activation::Identity)),
        ]);
        BranchNet::new(vec![bq, bt], vec![2, 1], head)
    }

    /// A tiny synthetic regression: card = round(exp(2·x₀ + τ)), learnable
    /// from (x, τ) pairs. Checks the Algorithm-1 loop converges.
    #[test]
    fn branch_regression_learns_a_simple_cardinality_function() {
        let n = 256;
        let (xs, taus, cards) = synth_regression(n);
        let mut net = small_regressor(1);

        let mut build = |idx: &[usize]| {
            let xq = Matrix::from_rows(&idx.iter().map(|&i| &xs[i][..]).collect::<Vec<_>>());
            let xt = Matrix::from_vec(idx.len(), 1, idx.iter().map(|&i| taus[i]).collect());
            let c: Vec<f32> = idx.iter().map(|&i| cards[i]).collect();
            (vec![xq, xt], c)
        };
        let cfg = TrainConfig {
            epochs: 80,
            batch_size: 32,
            learning_rate: 5e-3,
            ..Default::default()
        };
        let report = train_branch_regression(&mut net, n, &mut build, &cfg);
        assert!(report.final_loss.is_finite());
        assert_eq!(report.recoveries, 0);
        assert!(!report.diverged);

        // Mean Q-error on the training points should be small.
        let (inputs, cards_all) = build(&(0..n).collect::<Vec<_>>());
        let refs: Vec<&Matrix> = inputs.iter().collect();
        let pred = net.forward(&refs);
        let mean_q: f32 = pred
            .as_slice()
            .iter()
            .zip(&cards_all)
            .map(|(&p, &c)| {
                crate::metrics::q_error(crate::metrics::decode_log_card(p, f32::MAX), c)
            })
            .sum::<f32>()
            / n as f32;
        assert!(mean_q < 2.0, "mean Q-error {mean_q} after training");
    }

    /// Same seed + same data must train to bit-identical weights whether
    /// the gradient shards run on 1, 2, or 8 threads.
    #[test]
    fn branch_regression_weights_are_thread_count_independent() {
        let n = 96;
        let (xs, taus, cards) = synth_regression(n);
        let mut flats: Vec<Vec<f32>> = Vec::new();
        for threads in [1usize, 2, 8] {
            let mut net = small_regressor(9);
            let mut build = |idx: &[usize]| {
                let xq = Matrix::from_rows(&idx.iter().map(|&i| &xs[i][..]).collect::<Vec<_>>());
                let xt = Matrix::from_vec(idx.len(), 1, idx.iter().map(|&i| taus[i]).collect());
                let c: Vec<f32> = idx.iter().map(|&i| cards[i]).collect();
                (vec![xq, xt], c)
            };
            let cfg = TrainConfig {
                epochs: 4,
                batch_size: 64, // 4 shards of GRAD_SHARD_ROWS rows
                threads,
                ..Default::default()
            };
            train_branch_regression(&mut net, n, &mut build, &cfg);
            flats.push(net.flat_params());
        }
        assert_eq!(flats[0], flats[1], "T=1 vs T=2 weights differ");
        assert_eq!(flats[0], flats[2], "T=1 vs T=8 weights differ");
    }

    /// A poisoned (NaN-producing) mini-batch mid-training must trigger a
    /// rollback to the last checkpoint, after which training finishes and
    /// reports the recovery.
    #[test]
    fn trainer_recovers_from_poisoned_minibatch_via_checkpoint() {
        let n = 64;
        let (xs, taus, cards) = synth_regression(n);
        let mut net = small_regressor(5);
        let mut calls = 0usize;
        let mut poisoned = false;
        let mut build = |idx: &[usize]| {
            calls += 1;
            let xq = Matrix::from_rows(&idx.iter().map(|&i| &xs[i][..]).collect::<Vec<_>>());
            let xt = Matrix::from_vec(idx.len(), 1, idx.iter().map(|&i| taus[i]).collect());
            let mut c: Vec<f32> = idx.iter().map(|&i| cards[i]).collect();
            // One batch of epoch 2 (batches 1–2 are epoch 0, …) produces
            // NaN targets exactly once.
            if calls == 5 && !poisoned {
                poisoned = true;
                c[0] = f32::NAN;
            }
            (vec![xq, xt], c)
        };
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 32,
            checkpoint_every: 2,
            patience: 50, // don't stop early; exercise the full schedule
            ..Default::default()
        };
        let report = train_branch_regression(&mut net, n, &mut build, &cfg);
        assert!(poisoned, "the poison batch never ran");
        assert_eq!(report.recoveries, 1);
        assert!(!report.diverged);
        assert!(report.final_loss.is_finite());
        assert!(
            report.epochs_run > cfg.epochs,
            "rolled-back epochs must be re-attempted (ran {})",
            report.epochs_run
        );
        assert!(
            net.flat_params().iter().all(|w| w.is_finite()),
            "weights must be finite after recovery"
        );
    }

    /// Data that poisons every epoch exhausts `max_recoveries`: training
    /// stops at the checkpoint and reports divergence instead of looping
    /// forever or returning NaN weights.
    #[test]
    fn trainer_reports_divergence_when_recovery_keeps_failing() {
        let n = 64;
        let (xs, taus, cards) = synth_regression(n);
        let mut net = small_regressor(6);
        let mut build = |idx: &[usize]| {
            let xq = Matrix::from_rows(&idx.iter().map(|&i| &xs[i][..]).collect::<Vec<_>>());
            let xt = Matrix::from_vec(idx.len(), 1, idx.iter().map(|&i| taus[i]).collect());
            let mut c: Vec<f32> = idx.iter().map(|&i| cards[i]).collect();
            c[0] = f32::NAN; // every single batch is poisoned
            (vec![xq, xt], c)
        };
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 64,
            max_recoveries: 2,
            ..Default::default()
        };
        let report = train_branch_regression(&mut net, n, &mut build, &cfg);
        assert!(report.diverged);
        assert_eq!(report.recoveries, 3);
        assert!(
            net.flat_params().iter().all(|w| w.is_finite()),
            "divergence must leave the checkpointed weights in place"
        );
    }

    /// The Algorithm-2 loop must learn a linearly separable segment
    /// selection task.
    #[test]
    fn global_classifier_learns_separable_selection() {
        let mut rng = StdRng::seed_from_u64(43);
        use rand::Rng;
        let n = 200;
        let n_segs = 4;
        // Feature: x ∈ R⁴; label for segment i is 1 iff x[i] > 0.
        let xs: Vec<[f32; 4]> = (0..n)
            .map(|_| std::array::from_fn(|_| rng.gen_range(-1.0..1.0f32)))
            .collect();
        let mut init = StdRng::seed_from_u64(2);
        let b = Sequential::new(vec![Layer::Dense(Dense::new(
            &mut init,
            4,
            8,
            Activation::Tanh,
        ))]);
        let head = Sequential::new(vec![
            Layer::Dense(Dense::new(&mut init, 8, n_segs, Activation::Identity)),
            Layer::ShiftSigmoid(ShiftSigmoid::new(n_segs)),
        ]);
        let mut net = BranchNet::new(vec![b], vec![4], head);

        let mut build = |idx: &[usize]| {
            let x = Matrix::from_rows(&idx.iter().map(|&i| &xs[i][..]).collect::<Vec<_>>());
            let mut labels = Matrix::zeros(idx.len(), n_segs);
            for (r, &i) in idx.iter().enumerate() {
                for (s, &v) in xs[i][..n_segs].iter().enumerate() {
                    labels.set(r, s, if v > 0.0 { 1.0 } else { 0.0 });
                }
            }
            let weights = Matrix::zeros(idx.len(), n_segs);
            (vec![x], labels, weights)
        };
        let cfg = TrainConfig {
            epochs: 120,
            batch_size: 32,
            learning_rate: 1e-2,
            ..Default::default()
        };
        train_global_classifier(&mut net, n, &mut build, &cfg);

        // Accuracy at the 0.5 cut must be high.
        let (inputs, labels, _) = build(&(0..n).collect::<Vec<_>>());
        let refs: Vec<&Matrix> = inputs.iter().collect();
        let probs = net.forward(&refs);
        let mut correct = 0usize;
        for i in 0..probs.as_slice().len() {
            let pred = probs.as_slice()[i] > 0.5;
            if pred == (labels.as_slice()[i] > 0.5) {
                correct += 1;
            }
        }
        let acc = correct as f32 / probs.as_slice().len() as f32;
        assert!(acc > 0.9, "selection accuracy {acc}");
    }

    /// The classifier loop shares the sharded path; pin its T-independence
    /// too (labels/weights shard along rows).
    #[test]
    fn global_classifier_weights_are_thread_count_independent() {
        let mut rng = StdRng::seed_from_u64(44);
        use rand::Rng;
        let n = 80;
        let n_segs = 3;
        let xs: Vec<[f32; 4]> = (0..n)
            .map(|_| std::array::from_fn(|_| rng.gen_range(-1.0..1.0f32)))
            .collect();
        let mut flats: Vec<Vec<f32>> = Vec::new();
        for threads in [1usize, 2, 8] {
            let mut init = StdRng::seed_from_u64(3);
            let b = Sequential::new(vec![Layer::Dense(Dense::new(
                &mut init,
                4,
                6,
                Activation::Tanh,
            ))]);
            let head = Sequential::new(vec![
                Layer::Dense(Dense::new(&mut init, 6, n_segs, Activation::Identity)),
                Layer::ShiftSigmoid(ShiftSigmoid::new(n_segs)),
            ]);
            let mut net = BranchNet::new(vec![b], vec![4], head);
            let mut build = |idx: &[usize]| {
                let x = Matrix::from_rows(&idx.iter().map(|&i| &xs[i][..]).collect::<Vec<_>>());
                let mut labels = Matrix::zeros(idx.len(), n_segs);
                for (r, &i) in idx.iter().enumerate() {
                    for (s, &v) in xs[i][..n_segs].iter().enumerate() {
                        labels.set(r, s, if v > 0.0 { 1.0 } else { 0.0 });
                    }
                }
                let weights = Matrix::zeros(idx.len(), n_segs);
                (vec![x], labels, weights)
            };
            let cfg = TrainConfig {
                epochs: 3,
                batch_size: 64,
                threads,
                ..Default::default()
            };
            train_global_classifier(&mut net, n, &mut build, &cfg);
            flats.push(net.flat_params());
        }
        assert_eq!(flats[0], flats[1], "T=1 vs T=2 weights differ");
        assert_eq!(flats[0], flats[2], "T=1 vs T=8 weights differ");
    }
}
