// Library (non-test) code must not panic on malformed input: surface
// typed errors instead. Tests may unwrap freely.
// The workspace is 100% safe Rust; `cardest-lint` (unsafe-block rule) and
// this forbid cross-check each other.
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # cardest-nn
//!
//! A minimal, deterministic, CPU-only neural-network library built for the
//! `cardest` reproduction of *Learned Cardinality Estimation for Similarity
//! Queries* (SIGMOD 2021).
//!
//! The paper trains small multi-branch networks (MLP embeddings, a
//! shared-weight 1-D CNN for query segmentation, and a sigmoid classifier
//! head for the global model). This crate provides exactly those pieces and
//! nothing more:
//!
//! * [`tensor::Matrix`] — flat row-major `f32` matrices with the handful of
//!   BLAS-free kernels the models need, backed by the register-blocked,
//!   cache-tiled matmuls in [`gemm`],
//! * [`layers`] — `Dense` (optionally positivity-constrained for the
//!   monotone threshold path), `Conv1d` with built-in pooling (the query
//!   segmentation module of §3.2/Fig. 7), and `ShiftSigmoid` (the global
//!   model's learnable threshold before the sigmoid, §5.1),
//! * [`net`] — [`net::Sequential`] stacks and the multi-branch
//!   [`net::BranchNet`] (the E1/E2/E3 → F composition of Fig. 2),
//! * [`loss`] — the paper's hybrid MAPE + λ·Q-error regression loss
//!   (§3.1) and the cardinality-weighted BCE loss of the global model
//!   (§3.3),
//! * [`optim`] — Adam and SGD,
//! * [`metrics`] — Q-error / MAPE summaries used throughout the evaluation.
//!
//! Determinism: every random choice flows through a caller-provided seeded
//! RNG, and the data-parallel trainer reduces per-shard gradients in a
//! fixed order (see [`parallel`]), so training runs are bit-reproducible
//! for any thread count.
//!
//! ```
//! use cardest_nn::layers::{Dense, Layer};
//! use cardest_nn::net::{BranchNet, Sequential};
//! use cardest_nn::trainer::{train_branch_regression, TrainConfig};
//! use cardest_nn::{Activation, Matrix};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A two-branch regressor: F(E1(x) ⊕ E2(τ)) ≈ ln card.
//! let mut rng = StdRng::seed_from_u64(0);
//! let e1 = Sequential::new(vec![Layer::Dense(Dense::new(&mut rng, 2, 8, Activation::Relu))]);
//! let e2 = Sequential::new(vec![Layer::Dense(Dense::new_nonneg(&mut rng, 1, 4, Activation::Relu))]);
//! let f = Sequential::new(vec![
//!     Layer::Dense(Dense::new(&mut rng, 12, 8, Activation::Relu)),
//!     Layer::Dense(Dense::new(&mut rng, 8, 1, Activation::Identity)),
//! ]);
//! let mut net = BranchNet::new(vec![e1, e2], vec![2, 1], f);
//!
//! // Fit card = exp(x0 + τ) from 64 synthetic samples.
//! let xs: Vec<[f32; 2]> = (0..64).map(|i| [i as f32 / 64.0, 0.5]).collect();
//! let taus: Vec<f32> = (0..64).map(|i| (i % 8) as f32 / 8.0).collect();
//! let cards: Vec<f32> = xs.iter().zip(&taus).map(|(x, t)| (x[0] + t).exp()).collect();
//! let mut build = |idx: &[usize]| {
//!     let xq = Matrix::from_rows(&idx.iter().map(|&i| &xs[i][..]).collect::<Vec<_>>());
//!     let xt = Matrix::from_vec(idx.len(), 1, idx.iter().map(|&i| taus[i]).collect());
//!     (vec![xq, xt], idx.iter().map(|&i| cards[i]).collect())
//! };
//! let cfg = TrainConfig { epochs: 5, ..Default::default() };
//! let report = train_branch_regression(&mut net, 64, &mut build, &cfg);
//! assert!(report.final_loss.is_finite());
//! ```

pub mod activation;
pub mod artifact;
pub mod faults;
pub mod gemm;
pub mod init;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod net;
pub mod optim;
pub mod parallel;
pub mod scratch;
pub mod tensor;
pub mod trainer;

pub use activation::Activation;
pub use artifact::ArtifactError;
pub use layers::{Conv1d, Dense, Layer, PoolOp, WeightConstraint};
pub use loss::{hybrid_loss, weighted_bce_loss, HybridLoss};
pub use metrics::{decode_log_card, mape, q_error, ErrorSummary};
pub use net::{BranchNet, Sequential};
pub use optim::{Adam, Optimizer, Sgd};
pub use parallel::{
    fan_exclusive, parallel_largest_first, resolve_threads, set_train_threads, train_threads,
};
pub use scratch::Scratch;
pub use tensor::Matrix;
pub use trainer::{train_branch_regression, train_global_classifier, TrainConfig, TrainReport};
