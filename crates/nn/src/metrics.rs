//! Error metrics used throughout the evaluation: Q-error, MAPE, and the
//! mean / median / 90th / 95th / 99th / max summary the paper reports in
//! Tables 4 and 7.

use serde::{Deserialize, Serialize};

use crate::loss::Q_ERROR_FLOOR;

/// Q-error: `max(ĉ, c) / min(ĉ, c)` with the 0.1 floor of §2.
pub fn q_error(estimate: f32, truth: f32) -> f32 {
    let hi = estimate.max(truth).max(Q_ERROR_FLOOR);
    let lo = estimate.min(truth).max(Q_ERROR_FLOOR);
    hi / lo
}

/// Mean absolute percentage error for one estimate: `|ĉ − c| / c`
/// (with the same floor guarding `c = 0`).
pub fn mape(estimate: f32, truth: f32) -> f32 {
    (estimate - truth).abs() / truth.max(Q_ERROR_FLOOR)
}

/// Decodes a raw `ln card` regressor output into a cardinality estimate:
/// `min(exp(clamp(o, ±20)), cap)`.
///
/// Contract: the result is always finite and non-negative for **any**
/// input, including NaN/±∞ outputs from corrupted weights — NaN decodes
/// to `0.0`, not to `cap` (the bare `exp(o).min(cap)` idiom this replaces
/// silently mapped NaN to the cap, because `f32::min(NaN, cap)` returns
/// `cap`). The ±20 clamp bounds `exp` at ≈ 4.85e8, well inside f32 range,
/// so overflow cannot produce ∞ either. Call sites without a cardinality
/// cap pass `f32::INFINITY`.
#[inline]
pub fn decode_log_card(o: f32, cap: f32) -> f32 {
    if o.is_nan() {
        return 0.0;
    }
    o.clamp(-20.0, 20.0).exp().min(cap.max(0.0))
}

/// Summary statistics over a set of per-query errors, matching the columns
/// of Tables 4 and 7 (Mean / Median / 90th / 95th / 99th / Max).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorSummary {
    pub mean: f32,
    pub median: f32,
    pub p90: f32,
    pub p95: f32,
    pub p99: f32,
    pub max: f32,
    pub count: usize,
}

impl ErrorSummary {
    /// Computes the summary. Returns a zeroed summary for an empty input.
    pub fn from_errors(errors: &[f32]) -> Self {
        if errors.is_empty() {
            return ErrorSummary {
                mean: 0.0,
                median: 0.0,
                p90: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0.0,
                count: 0,
            };
        }
        let mut sorted = errors.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mean = sorted.iter().sum::<f32>() / sorted.len() as f32;
        ErrorSummary {
            mean,
            median: percentile(&sorted, 0.50),
            p90: percentile(&sorted, 0.90),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
            max: sorted.last().copied().unwrap_or(0.0),
            count: sorted.len(),
        }
    }

    /// Builds the summary directly from `(estimate, truth)` pairs using
    /// Q-error.
    pub fn from_q_errors(pairs: &[(f32, f32)]) -> Self {
        let errs: Vec<f32> = pairs.iter().map(|&(e, t)| q_error(e, t)).collect();
        Self::from_errors(&errs)
    }
}

/// Nearest-rank percentile on a pre-sorted slice, `q ∈ [0, 1]`.
fn percentile(sorted: &[f32], q: f32) -> f32 {
    debug_assert!(!sorted.is_empty());
    let rank = ((sorted.len() as f32 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_is_symmetric_and_at_least_one() {
        assert_eq!(q_error(10.0, 5.0), q_error(5.0, 10.0));
        assert!((q_error(7.0, 7.0) - 1.0).abs() < 1e-7);
        assert!(q_error(0.0, 0.0) >= 1.0);
    }

    #[test]
    fn q_error_floor_guards_zero() {
        // card = 0 estimated as 10 → 10 / 0.1 = 100.
        assert!((q_error(10.0, 0.0) - 100.0).abs() < 1e-4);
    }

    #[test]
    fn mape_matches_definition() {
        assert!((mape(8.0, 10.0) - 0.2).abs() < 1e-7);
        assert!((mape(12.0, 10.0) - 0.2).abs() < 1e-7);
    }

    #[test]
    fn summary_percentiles_are_nearest_rank() {
        let errs: Vec<f32> = (1..=100).map(|i| i as f32).collect();
        let s = ErrorSummary::from_errors(&errs);
        assert_eq!(s.median, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-4);
        assert_eq!(s.count, 100);
    }

    #[test]
    fn summary_of_empty_input_is_zeroed() {
        let s = ErrorSummary::from_errors(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn decode_log_card_caps_the_overflow_edge() {
        // A wildly large raw output must saturate at the cap, not overflow.
        assert_eq!(decode_log_card(1000.0, 250.0), 250.0);
        // Without a cap the ±20 clamp still bounds the result at e^20.
        let uncapped = decode_log_card(1000.0, f32::INFINITY);
        assert!(uncapped.is_finite());
        assert!((uncapped - 20.0f32.exp()).abs() < 1.0);
        // +∞ raw output behaves like any over-large value.
        assert_eq!(decode_log_card(f32::INFINITY, 250.0), 250.0);
    }

    #[test]
    fn decode_log_card_is_finite_and_non_negative_for_nan() {
        // The bare `exp(o).min(cap)` idiom mapped NaN to cap; the shared
        // helper must decode NaN to 0, never to a made-up cardinality.
        assert_eq!(decode_log_card(f32::NAN, 250.0), 0.0);
        assert_eq!(decode_log_card(f32::NAN, f32::INFINITY), 0.0);
        // Negative-infinity raw output decodes to e^-20 ≈ 0.
        let tiny = decode_log_card(f32::NEG_INFINITY, 250.0);
        assert!(tiny.is_finite() && (0.0..1e-8).contains(&tiny));
        // A negative cap is treated as 0, not propagated.
        assert_eq!(decode_log_card(5.0, -3.0), 0.0);
    }

    #[test]
    fn decode_log_card_matches_plain_exp_in_range() {
        for &(o, cap) in &[(0.0f32, 100.0f32), (3.5, 1e6), (-4.0, 50.0)] {
            assert!((decode_log_card(o, cap) - o.exp().min(cap)).abs() < 1e-3);
        }
    }

    #[test]
    fn summary_handles_single_element() {
        let s = ErrorSummary::from_errors(&[3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p99, 3.0);
    }
}
