//! The three layer kinds the paper's models are assembled from.
//!
//! * [`Dense`] — fully-connected layer. With a [`WeightConstraint`] it
//!   becomes the positivity-constrained layer used by the threshold
//!   embedding `E2`/`E5` to make the τ-path monotone (§5.1).
//! * [`Conv1d`] — 1-D convolution with shared weights per layer plus a
//!   built-in pooling stage. With `kernel = stride = segment length` the
//!   first layer evaluates one filter per query segment — exactly the
//!   query-segmentation module `f()`/`g()` of §3.2 and Fig. 7.
//! * [`ShiftSigmoid`] — `σ(s − t)` with a learnable per-output threshold
//!   `t`: the "added learnable threshold before the Sigmoid activator" of
//!   the global model (§5.1).
//!
//! Layers are enum variants rather than trait objects so models serialize
//! with serde and dispatch statically.

use crate::activation::Activation;
use crate::init;
use crate::scratch::Scratch;
use crate::tensor::{axpy, dot, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A mutable view over one parameter tensor and its gradient accumulator.
/// Optimizers iterate these in a deterministic order.
pub struct ParamSlice<'a> {
    pub values: &'a mut [f32],
    pub grads: &'a mut [f32],
}

/// Positivity constraints on a dense layer's weights, enforced by clamping
/// after every optimizer step (standard monotone-network practice).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum WeightConstraint {
    /// Unconstrained weights.
    #[default]
    None,
    /// Every weight is clamped to `≥ 0`. Used by the threshold embedding.
    NonNegative,
    /// Only weights reading the flagged input columns are clamped to `≥ 0`.
    /// Used in `strict_monotonic` mode for the first layer of `F`, whose
    /// input concatenates `z_q ⊕ z_τ ⊕ z_D`: only the `z_τ` block must be
    /// positive for the τ-path to stay monotone.
    NonNegativeCols(Vec<bool>),
}

/// Pooling operator inside a [`Conv1d`] layer — the paper tunes this as the
/// hyperparameter `θ_op ∈ {MAX, AVG, SUM}` (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolOp {
    Max,
    Avg,
    Sum,
}

/// Fully-connected layer `y = act(x·Wᵀ + b)` with `W` stored `[out, in]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    w: Matrix,
    b: Vec<f32>,
    gw: Matrix,
    gb: Vec<f32>,
    activation: Activation,
    constraint: WeightConstraint,
    #[serde(skip)]
    cache_input: Option<Matrix>,
    #[serde(skip)]
    cache_output: Option<Matrix>,
}

impl Dense {
    /// Creates a dense layer with activation-appropriate initialization.
    pub fn new<R: Rng>(rng: &mut R, in_dim: usize, out_dim: usize, activation: Activation) -> Self {
        let w = match activation {
            Activation::Relu => init::he_uniform(rng, in_dim, in_dim * out_dim),
            _ => init::xavier_uniform(rng, in_dim, out_dim, in_dim * out_dim),
        };
        Dense {
            in_dim,
            out_dim,
            w: Matrix::from_vec(out_dim, in_dim, w),
            b: vec![0.0; out_dim],
            gw: Matrix::zeros(out_dim, in_dim),
            gb: vec![0.0; out_dim],
            activation,
            constraint: WeightConstraint::None,
            cache_input: None,
            cache_output: None,
        }
    }

    /// Creates a positivity-constrained dense layer (monotone in every
    /// input): weights are initialized non-negative and clamped after each
    /// step. This is the building block of the threshold embedding `E2`.
    pub fn new_nonneg<R: Rng>(
        rng: &mut R,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
    ) -> Self {
        let w = init::nonneg_uniform(rng, in_dim, out_dim, in_dim * out_dim);
        Dense {
            in_dim,
            out_dim,
            w: Matrix::from_vec(out_dim, in_dim, w),
            b: vec![0.0; out_dim],
            gw: Matrix::zeros(out_dim, in_dim),
            gb: vec![0.0; out_dim],
            activation,
            constraint: WeightConstraint::NonNegative,
            cache_input: None,
            cache_output: None,
        }
    }

    /// Restricts positivity to the weights reading the flagged input columns.
    pub fn with_nonneg_cols(mut self, cols: Vec<bool>) -> Self {
        assert_eq!(cols.len(), self.in_dim, "column mask length mismatch");
        // Make the constraint hold immediately.
        for o in 0..self.out_dim {
            for (i, &flag) in cols.iter().enumerate() {
                if flag && self.w.get(o, i) < 0.0 {
                    let v = -self.w.get(o, i);
                    self.w.set(o, i, v);
                }
            }
        }
        self.constraint = WeightConstraint::NonNegativeCols(cols);
        self
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Read-only view of the weight matrix (used by tests and the
    /// monotonicity checker).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    fn forward(&mut self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim, "dense input width mismatch");
        let mut y = x.matmul_nt(&self.w);
        y.add_bias(&self.b);
        self.activation.apply(y.as_mut_slice());
        self.cache_input = Some(x.clone());
        self.cache_output = Some(y.clone());
        y
    }

    /// Immutable forward pass: same math as [`Dense::forward`] (any batch
    /// size), but no caches are written, so the layer can be shared across
    /// threads. Temporaries come from the caller's [`Scratch`].
    fn infer(&self, x: &Matrix, scratch: &mut Scratch) -> Matrix {
        assert_eq!(x.cols(), self.in_dim, "dense input width mismatch");
        let mut y = scratch.take(x.rows(), self.out_dim);
        x.matmul_nt_into(&self.w, &mut y);
        y.add_bias(&self.b);
        self.activation.apply(y.as_mut_slice());
        y
    }

    // Calling backward before forward is an API-contract violation; the
    // cache `expect`s make that a panic rather than a silent wrong gradient.
    #[allow(clippy::expect_used)]
    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        // cardest-lint: allow(panic-path): backward before forward is a Layer API-contract violation; abort beats a silent wrong gradient
        let x = self.cache_input.as_ref().expect("backward before forward");
        // cardest-lint: allow(panic-path): backward before forward is a Layer API-contract violation; abort beats a silent wrong gradient
        let y = self.cache_output.as_ref().expect("backward before forward");
        // Pre-activation gradient.
        let mut g = grad_out.clone();
        for (gi, yi) in g.as_mut_slice().iter_mut().zip(y.as_slice()) {
            *gi *= self.activation.derivative_from_output(*yi);
        }
        // Accumulate parameter gradients.
        let dw = g.matmul_tn(x); // [out, in]
        for (a, b) in self.gw.as_mut_slice().iter_mut().zip(dw.as_slice()) {
            *a += b;
        }
        for r in 0..g.rows() {
            for (gb, gi) in self.gb.iter_mut().zip(g.row(r)) {
                *gb += gi;
            }
        }
        // Input gradient: dx = g · W.
        g.matmul_nn(&self.w)
    }

    fn apply_constraints(&mut self) {
        match &self.constraint {
            WeightConstraint::None => {}
            WeightConstraint::NonNegative => {
                for w in self.w.as_mut_slice() {
                    if *w < 0.0 {
                        *w = 0.0;
                    }
                }
            }
            WeightConstraint::NonNegativeCols(cols) => {
                let out_dim = self.out_dim;
                for o in 0..out_dim {
                    for (i, &flag) in cols.iter().enumerate() {
                        if flag && self.w.get(o, i) < 0.0 {
                            self.w.set(o, i, 0.0);
                        }
                    }
                }
            }
        }
    }
}

/// 1-D convolution with shared weights, built-in activation and pooling.
///
/// Input is `[batch, in_channels × in_len]` laid out channel-major per
/// sample. Output is `[batch, out_channels × pool_len]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv1d {
    in_channels: usize,
    in_len: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    pool: PoolOp,
    pool_size: usize,
    activation: Activation,
    /// Weights `[out_c, in_c, k]`, flattened.
    w: Vec<f32>,
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
    #[serde(skip)]
    cache_input: Option<Matrix>,
    #[serde(skip)]
    cache_conv: Option<Matrix>,
    #[serde(skip)]
    cache_argmax: Option<Vec<usize>>,
}

/// Static description of a conv layer — the tuple `Θ` of tunable
/// hyperparameters from §5.2 (Algorithm 3 searches over these).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvSpec {
    pub out_channels: usize,
    pub kernel: usize,
    pub stride: usize,
    pub padding: usize,
    pub pool_size: usize,
    pub pool: PoolOp,
}

impl Conv1d {
    /// Creates a conv layer for input `[in_channels × in_len]`.
    ///
    /// # Panics
    /// Panics if the configuration produces an empty output.
    pub fn new<R: Rng>(
        rng: &mut R,
        in_channels: usize,
        in_len: usize,
        spec: ConvSpec,
        activation: Activation,
    ) -> Self {
        let conv_len = Self::conv_len_for(in_len, &spec);
        assert!(
            conv_len >= 1,
            "conv configuration {spec:?} yields empty output for len {in_len}"
        );
        let fan_in = in_channels * spec.kernel;
        let n = spec.out_channels * in_channels * spec.kernel;
        let w = match activation {
            Activation::Relu => init::he_uniform(rng, fan_in, n),
            _ => init::xavier_uniform(rng, fan_in, spec.out_channels, n),
        };
        Conv1d {
            in_channels,
            in_len,
            out_channels: spec.out_channels,
            kernel: spec.kernel,
            stride: spec.stride,
            padding: spec.padding,
            pool: spec.pool,
            pool_size: spec.pool_size.max(1),
            activation,
            w,
            b: vec![0.0; spec.out_channels],
            gw: vec![0.0; n],
            gb: vec![0.0; spec.out_channels],
            cache_input: None,
            cache_conv: None,
            cache_argmax: None,
        }
    }

    fn conv_len_for(in_len: usize, spec: &ConvSpec) -> usize {
        let padded = in_len + 2 * spec.padding;
        if padded < spec.kernel {
            0
        } else {
            (padded - spec.kernel) / spec.stride.max(1) + 1
        }
    }

    /// Whether `spec` is applicable to an input of length `in_len`.
    pub fn spec_fits(in_len: usize, spec: &ConvSpec) -> bool {
        Self::conv_len_for(in_len, spec) >= 1
    }

    /// Convolution output length before pooling.
    pub fn conv_len(&self) -> usize {
        let spec = ConvSpec {
            out_channels: self.out_channels,
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
            pool_size: self.pool_size,
            pool: self.pool,
        };
        Self::conv_len_for(self.in_len, &spec)
    }

    /// Output length after pooling (`ceil(conv_len / pool_size)`).
    pub fn pool_len(&self) -> usize {
        self.conv_len().div_ceil(self.pool_size)
    }

    pub fn in_dim(&self) -> usize {
        self.in_channels * self.in_len
    }

    pub fn out_dim(&self) -> usize {
        self.out_channels * self.pool_len()
    }

    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    #[inline]
    fn w_at(&self, oc: usize, ic: usize, k: usize) -> f32 {
        self.w[(oc * self.in_channels + ic) * self.kernel + k]
    }

    /// Convolution + activation into `conv` (`[batch, out_c × conv_len]`).
    ///
    /// The kernel window is clipped to the valid input range once per tap,
    /// so the inner product runs over contiguous slices with no per-element
    /// boundary branch.
    fn conv_into(&self, x: &Matrix, conv: &mut Matrix) {
        let batch = x.rows();
        let conv_len = self.conv_len();
        if self.stride == 1 {
            // Unit stride: for each weight tap the valid outputs form one
            // contiguous run (`t + k − padding ∈ [0, in_len)`), so the
            // whole tap is a single `axpy` over the output row — much
            // faster than per-output dots when the kernel is short.
            for s in 0..batch {
                let xin = x.row(s);
                let orow = conv.row_mut(s);
                for oc in 0..self.out_channels {
                    let seg = &mut orow[oc * conv_len..(oc + 1) * conv_len];
                    seg.fill(self.b[oc]);
                    for ic in 0..self.in_channels {
                        let xrow = &xin[ic * self.in_len..(ic + 1) * self.in_len];
                        for k in 0..self.kernel {
                            let t_lo = self.padding.saturating_sub(k);
                            let t_hi = (self.in_len + self.padding).saturating_sub(k).min(conv_len);
                            if t_lo < t_hi {
                                let x0 = t_lo + k - self.padding;
                                axpy(
                                    self.w_at(oc, ic, k),
                                    &xrow[x0..x0 + (t_hi - t_lo)],
                                    &mut seg[t_lo..t_hi],
                                );
                            }
                        }
                    }
                }
            }
            self.activation.apply(conv.as_mut_slice());
            return;
        }
        let in_len = self.in_len as isize;
        for s in 0..batch {
            let xin = x.row(s);
            let orow = conv.row_mut(s);
            for oc in 0..self.out_channels {
                let wb = oc * self.in_channels * self.kernel;
                for t in 0..conv_len {
                    let start = (t * self.stride) as isize - self.padding as isize;
                    let k_lo = (-start).max(0) as usize;
                    let k_hi = (in_len - start).clamp(0, self.kernel as isize) as usize;
                    let mut acc = self.b[oc];
                    if k_hi > k_lo {
                        let x0 = (start + k_lo as isize) as usize;
                        for ic in 0..self.in_channels {
                            let xs = &xin[ic * self.in_len + x0..][..k_hi - k_lo];
                            let ws = &self.w[wb + ic * self.kernel + k_lo..][..k_hi - k_lo];
                            acc += dot(ws, xs);
                        }
                    }
                    orow[oc * conv_len + t] = acc;
                }
            }
        }
        self.activation.apply(conv.as_mut_slice());
    }

    /// Pooling into `out` (`[batch, out_c × pool_len]`); `argmax`, when
    /// provided, records the winning position per max-pool window for
    /// backward. Inference passes `None` and skips the bookkeeping.
    fn pool_into(&self, conv: &Matrix, out: &mut Matrix, mut argmax: Option<&mut [usize]>) {
        let batch = conv.rows();
        let conv_len = self.conv_len();
        let pool_len = self.pool_len();
        for s in 0..batch {
            let crow = conv.row(s);
            let orow = out.row_mut(s);
            for oc in 0..self.out_channels {
                for p in 0..pool_len {
                    let lo = p * self.pool_size;
                    let hi = ((p + 1) * self.pool_size).min(conv_len);
                    let window = &crow[oc * conv_len + lo..oc * conv_len + hi];
                    let oi = oc * pool_len + p;
                    match self.pool {
                        PoolOp::Max => {
                            let (ami, amv) = window.iter().enumerate().fold(
                                (0usize, f32::NEG_INFINITY),
                                |(bi, bv), (i, &v)| {
                                    if v > bv {
                                        (i, v)
                                    } else {
                                        (bi, bv)
                                    }
                                },
                            );
                            orow[oi] = amv;
                            if let Some(am) = argmax.as_deref_mut() {
                                am[(s * self.out_channels + oc) * pool_len + p] = lo + ami;
                            }
                        }
                        PoolOp::Avg => {
                            orow[oi] = window.iter().sum::<f32>() / window.len() as f32;
                        }
                        PoolOp::Sum => {
                            orow[oi] = window.iter().sum::<f32>();
                        }
                    }
                }
            }
        }
    }

    fn forward(&mut self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim(), "conv input width mismatch");
        let batch = x.rows();
        let mut conv = Matrix::zeros(batch, self.out_channels * self.conv_len());
        self.conv_into(x, &mut conv);
        let mut out = Matrix::zeros(batch, self.out_channels * self.pool_len());
        let mut argmax = vec![0usize; batch * self.out_channels * self.pool_len()];
        self.pool_into(&conv, &mut out, Some(&mut argmax));
        self.cache_input = Some(x.clone());
        self.cache_conv = Some(conv);
        self.cache_argmax = Some(argmax);
        out
    }

    /// Immutable forward pass over a full batch: identical math to
    /// [`Conv1d::forward`] but no caches (max-pool argmax bookkeeping is
    /// skipped — it only feeds backward).
    fn infer(&self, x: &Matrix, scratch: &mut Scratch) -> Matrix {
        assert_eq!(x.cols(), self.in_dim(), "conv input width mismatch");
        let batch = x.rows();
        let mut conv = scratch.take(batch, self.out_channels * self.conv_len());
        self.conv_into(x, &mut conv);
        let mut out = scratch.take(batch, self.out_channels * self.pool_len());
        self.pool_into(&conv, &mut out, None);
        scratch.recycle(conv);
        out
    }

    // Backward before forward is an API-contract violation (see Dense).
    #[allow(clippy::expect_used)]
    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        // cardest-lint: allow(panic-path): backward before forward is a Layer API-contract violation; abort beats a silent wrong gradient
        let x = self.cache_input.as_ref().expect("backward before forward");
        // cardest-lint: allow(panic-path): backward before forward is a Layer API-contract violation; abort beats a silent wrong gradient
        let conv = self.cache_conv.as_ref().expect("backward before forward");
        // cardest-lint: allow(panic-path): backward before forward is a Layer API-contract violation; abort beats a silent wrong gradient
        let argmax = self.cache_argmax.as_ref().expect("backward before forward");
        let batch = x.rows();
        let conv_len = self.conv_len();
        let pool_len = self.pool_len();
        // Un-pool into gradient w.r.t. post-activation conv output, then fold
        // in the activation derivative.
        let mut gconv = Matrix::zeros(batch, self.out_channels * conv_len);
        for s in 0..batch {
            let grow = grad_out.row(s);
            let crow = gconv.row_mut(s);
            for oc in 0..self.out_channels {
                for p in 0..pool_len {
                    let g = grow[oc * pool_len + p];
                    let lo = p * self.pool_size;
                    let hi = ((p + 1) * self.pool_size).min(conv_len);
                    match self.pool {
                        PoolOp::Max => {
                            let am = argmax[(s * self.out_channels + oc) * pool_len + p];
                            crow[oc * conv_len + am] += g;
                        }
                        PoolOp::Avg => {
                            let inv = 1.0 / (hi - lo) as f32;
                            for t in lo..hi {
                                crow[oc * conv_len + t] += g * inv;
                            }
                        }
                        PoolOp::Sum => {
                            for t in lo..hi {
                                crow[oc * conv_len + t] += g;
                            }
                        }
                    }
                }
            }
        }
        for (g, y) in gconv.as_mut_slice().iter_mut().zip(conv.as_slice()) {
            *g *= self.activation.derivative_from_output(*y);
        }
        // Parameter and input gradients.
        let mut gx = Matrix::zeros(batch, self.in_dim());
        for s in 0..batch {
            let xin = x.row(s);
            let grow = gconv.row(s);
            let gxrow = gx.row_mut(s);
            for oc in 0..self.out_channels {
                for t in 0..conv_len {
                    let g = grow[oc * conv_len + t];
                    // cardest-lint: allow(float-total-order): exact IEEE zero test to skip no-op axpy work, not a tolerance check
                    if g == 0.0 {
                        continue;
                    }
                    self.gb[oc] += g;
                    let start = (t * self.stride) as isize - self.padding as isize;
                    for ic in 0..self.in_channels {
                        let base = ic * self.in_len;
                        for k in 0..self.kernel {
                            let pos = start + k as isize;
                            if pos >= 0 && (pos as usize) < self.in_len {
                                let pos = pos as usize;
                                self.gw[(oc * self.in_channels + ic) * self.kernel + k] +=
                                    g * xin[base + pos];
                                gxrow[base + pos] += g * self.w_at(oc, ic, k);
                            }
                        }
                    }
                }
            }
        }
        gx
    }
}

/// `p = σ(s − t)` with a learnable per-output threshold vector `t`.
///
/// The global model emits one selection probability per data segment; the
/// learned shift keeps the probability monotone in the query threshold
/// while letting each segment pick its own operating point (§5.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShiftSigmoid {
    dim: usize,
    t: Vec<f32>,
    gt: Vec<f32>,
    #[serde(skip)]
    cache_output: Option<Matrix>,
}

impl ShiftSigmoid {
    pub fn new(dim: usize) -> Self {
        ShiftSigmoid {
            dim,
            t: vec![0.0; dim],
            gt: vec![0.0; dim],
            cache_output: None,
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    fn forward(&mut self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.dim, "shift-sigmoid input width mismatch");
        let mut y = x.clone();
        for r in 0..y.rows() {
            for (v, t) in y.row_mut(r).iter_mut().zip(&self.t) {
                *v -= t;
            }
        }
        Activation::Sigmoid.apply(y.as_mut_slice());
        self.cache_output = Some(y.clone());
        y
    }

    /// Immutable forward pass (no cache): `σ(x − t)` element-wise.
    fn infer(&self, x: &Matrix, scratch: &mut Scratch) -> Matrix {
        assert_eq!(x.cols(), self.dim, "shift-sigmoid input width mismatch");
        let mut y = scratch.take(x.rows(), x.cols());
        y.as_mut_slice().copy_from_slice(x.as_slice());
        for r in 0..y.rows() {
            for (v, t) in y.row_mut(r).iter_mut().zip(&self.t) {
                *v -= t;
            }
        }
        Activation::Sigmoid.apply(y.as_mut_slice());
        y
    }

    // Backward before forward is an API-contract violation (see Dense).
    #[allow(clippy::expect_used)]
    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        // cardest-lint: allow(panic-path): backward before forward is a Layer API-contract violation; abort beats a silent wrong gradient
        let y = self.cache_output.as_ref().expect("backward before forward");
        let mut gx = grad_out.clone();
        for (g, p) in gx.as_mut_slice().iter_mut().zip(y.as_slice()) {
            *g *= p * (1.0 - p);
        }
        for r in 0..gx.rows() {
            for (gt, g) in self.gt.iter_mut().zip(gx.row(r)) {
                *gt -= g;
            }
        }
        gx
    }
}

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1−p)`, so evaluation
/// needs no rescaling. Exp-9 credits part of GL+'s speed to "the dropout
/// for DNN" — only a part of the parameters participating per query.
///
/// The layer is a no-op until [`Dropout::set_training`] turns training
/// mode on; estimators run inference with the mask disabled.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropout {
    dim: usize,
    p: f32,
    #[serde(skip)]
    training: bool,
    /// Deterministic per-forward mask seed, advanced each call.
    seed: u64,
    #[serde(skip)]
    cache_mask: Option<Vec<f32>>,
}

impl Dropout {
    pub fn new(dim: usize, p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1)"
        );
        Dropout {
            dim,
            p,
            training: false,
            seed,
            cache_mask: None,
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Enables/disables the training-time mask.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn forward(&mut self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.dim, "dropout input width mismatch");
        // cardest-lint: allow(float-total-order): p == 0.0 is an exact sentinel for "dropout disabled", set only from the literal
        if !self.training || self.p == 0.0 {
            self.cache_mask = None;
            return x.clone();
        }
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        self.seed = self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let scale = 1.0 / (1.0 - self.p);
        let mask: Vec<f32> = (0..x.as_slice().len())
            .map(|_| {
                if rng.gen::<f32>() < self.p {
                    0.0
                } else {
                    scale
                }
            })
            .collect();
        let mut y = x.clone();
        for (v, m) in y.as_mut_slice().iter_mut().zip(&mask) {
            *v *= m;
        }
        self.cache_mask = Some(mask);
        y
    }

    /// Immutable forward pass: inference-mode dropout is the identity.
    fn infer(&self, x: &Matrix, scratch: &mut Scratch) -> Matrix {
        assert_eq!(x.cols(), self.dim, "dropout input width mismatch");
        let mut y = scratch.take(x.rows(), x.cols());
        y.as_mut_slice().copy_from_slice(x.as_slice());
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        match &self.cache_mask {
            None => grad_out.clone(),
            Some(mask) => {
                let mut g = grad_out.clone();
                for (v, m) in g.as_mut_slice().iter_mut().zip(mask) {
                    *v *= m;
                }
                g
            }
        }
    }
}

/// A network layer. Enum-based so models are serde-serializable and layer
/// dispatch is static.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Layer {
    Dense(Dense),
    Conv1d(Conv1d),
    ShiftSigmoid(ShiftSigmoid),
    Dropout(Dropout),
}

impl Layer {
    /// Runs the layer on a batch, caching what backward needs.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        match self {
            Layer::Dense(l) => l.forward(x),
            Layer::Conv1d(l) => l.forward(x),
            Layer::ShiftSigmoid(l) => l.forward(x),
            Layer::Dropout(l) => l.forward(x),
        }
    }

    /// Runs the layer on a batch without mutating it: the shared-model
    /// inference path. Identical math to [`Layer::forward`] (dropout is the
    /// identity at inference either way); temporaries are drawn from the
    /// caller's [`Scratch`].
    pub fn infer(&self, x: &Matrix, scratch: &mut Scratch) -> Matrix {
        match self {
            Layer::Dense(l) => l.infer(x, scratch),
            Layer::Conv1d(l) => l.infer(x, scratch),
            Layer::ShiftSigmoid(l) => l.infer(x, scratch),
            Layer::Dropout(l) => l.infer(x, scratch),
        }
    }

    /// Back-propagates `grad_out`, accumulating parameter gradients and
    /// returning the gradient w.r.t. the layer input.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        match self {
            Layer::Dense(l) => l.backward(grad_out),
            Layer::Conv1d(l) => l.backward(grad_out),
            Layer::ShiftSigmoid(l) => l.backward(grad_out),
            Layer::Dropout(l) => l.backward(grad_out),
        }
    }

    /// Flattened output width for a given input width.
    pub fn out_dim(&self) -> usize {
        match self {
            Layer::Dense(l) => l.out_dim(),
            Layer::Conv1d(l) => l.out_dim(),
            Layer::ShiftSigmoid(l) => l.dim(),
            Layer::Dropout(l) => l.dim(),
        }
    }

    /// Flattened input width the layer expects.
    pub fn in_dim(&self) -> usize {
        match self {
            Layer::Dense(l) => l.in_dim(),
            Layer::Conv1d(l) => l.in_dim(),
            Layer::ShiftSigmoid(l) => l.dim(),
            Layer::Dropout(l) => l.dim(),
        }
    }

    /// Visits every `(values, grads)` parameter pair in deterministic order.
    pub fn params_mut(&mut self) -> Vec<ParamSlice<'_>> {
        match self {
            Layer::Dense(l) => vec![
                ParamSlice {
                    values: l.w.as_mut_slice(),
                    grads: l.gw.as_mut_slice(),
                },
                ParamSlice {
                    values: &mut l.b,
                    grads: &mut l.gb,
                },
            ],
            Layer::Conv1d(l) => vec![
                ParamSlice {
                    values: &mut l.w,
                    grads: &mut l.gw,
                },
                ParamSlice {
                    values: &mut l.b,
                    grads: &mut l.gb,
                },
            ],
            Layer::ShiftSigmoid(l) => {
                vec![ParamSlice {
                    values: &mut l.t,
                    grads: &mut l.gt,
                }]
            }
            Layer::Dropout(_) => Vec::new(),
        }
    }

    /// Read-only parameter views in the same order as
    /// [`params_mut`](Self::params_mut) (used for snapshots and replica
    /// synchronization in the data-parallel trainer).
    pub fn param_values(&self) -> Vec<&[f32]> {
        match self {
            Layer::Dense(l) => vec![l.w.as_slice(), &l.b],
            Layer::Conv1d(l) => vec![&l.w, &l.b],
            Layer::ShiftSigmoid(l) => vec![&l.t],
            Layer::Dropout(_) => Vec::new(),
        }
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Dense(l) => l.w.as_slice().len() + l.b.len(),
            Layer::Conv1d(l) => l.w.len() + l.b.len(),
            Layer::ShiftSigmoid(l) => l.t.len(),
            Layer::Dropout(_) => 0,
        }
    }

    /// Re-establishes weight constraints after an optimizer step.
    pub fn apply_constraints(&mut self) {
        if let Layer::Dense(l) = self {
            l.apply_constraints();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference gradient check over every parameter and the input,
    /// for an arbitrary layer under a quadratic loss L = 0.5·Σ y².
    fn grad_check(layer: &mut Layer, x: &Matrix, tol: f32) {
        let loss = |layer: &mut Layer, x: &Matrix| -> f32 {
            let y = layer.forward(x);
            0.5 * y.as_slice().iter().map(|v| v * v).sum::<f32>()
        };
        // Analytic gradients.
        let y = layer.forward(x);
        let gx = layer.backward(&y);
        let analytic: Vec<Vec<f32>> = layer
            .params_mut()
            .iter()
            .map(|p| p.grads.to_vec())
            .collect();
        // Numeric parameter gradients.
        let h = 2e-3f32;
        for (pi, grads) in analytic.iter().enumerate() {
            for (wi, &an) in grads.iter().enumerate() {
                let orig = layer.params_mut()[pi].values[wi];
                layer.params_mut()[pi].values[wi] = orig + h;
                let lp = loss(layer, x);
                layer.params_mut()[pi].values[wi] = orig - h;
                let lm = loss(layer, x);
                layer.params_mut()[pi].values[wi] = orig;
                let fd = (lp - lm) / (2.0 * h);
                let denom = fd.abs().max(an.abs()).max(1.0);
                assert!(
                    (fd - an).abs() / denom < tol,
                    "param[{pi}][{wi}]: fd={fd} analytic={an}"
                );
            }
        }
        // Numeric input gradients.
        let mut xm = x.clone();
        for i in 0..xm.as_slice().len() {
            let orig = xm.as_slice()[i];
            xm.as_mut_slice()[i] = orig + h;
            let lp = loss(layer, &xm);
            xm.as_mut_slice()[i] = orig - h;
            let lm = loss(layer, &xm);
            xm.as_mut_slice()[i] = orig;
            let fd = (lp - lm) / (2.0 * h);
            let an = gx.as_slice()[i];
            let denom = fd.abs().max(an.abs()).max(1.0);
            assert!(
                (fd - an).abs() / denom < tol,
                "input[{i}]: fd={fd} analytic={an}"
            );
        }
    }

    fn batch(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
        use rand::Rng;
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
    }

    /// Probe loss L = 0.5·Σ y² accumulated in f64, so finite-difference
    /// noise comes only from the f32 forward pass (~1e-7 per output) and a
    /// 1e-3 tolerance has real margin.
    fn tight_loss(layer: &mut Layer, x: &Matrix) -> f64 {
        let y = layer.forward(x);
        0.5 * y
            .as_slice()
            .iter()
            .map(|&v| v as f64 * v as f64)
            .sum::<f64>()
    }

    /// Finite-difference gradient check at tolerance 1e-3 over every
    /// parameter and every input entry. Callers must keep the layer away
    /// from non-smooth points (ReLU kinks, max-pool ties) by more than `h`
    /// worth of perturbation — see the margin assertions in the tests.
    fn grad_check_tight(layer: &mut Layer, x: &Matrix) {
        const TOL: f64 = 1e-3;
        const H: f64 = 5e-3;
        let y = layer.forward(x);
        let gx = layer.backward(&y);
        let analytic: Vec<Vec<f32>> = layer
            .params_mut()
            .iter()
            .map(|p| p.grads.to_vec())
            .collect();
        for (pi, grads) in analytic.iter().enumerate() {
            for (wi, &an) in grads.iter().enumerate() {
                let orig = layer.params_mut()[pi].values[wi];
                layer.params_mut()[pi].values[wi] = orig + H as f32;
                let lp = tight_loss(layer, x);
                layer.params_mut()[pi].values[wi] = orig - H as f32;
                let lm = tight_loss(layer, x);
                layer.params_mut()[pi].values[wi] = orig;
                let fd = (lp - lm) / (2.0 * H);
                let an = an as f64;
                let denom = fd.abs().max(an.abs()).max(1.0);
                assert!(
                    (fd - an).abs() / denom < TOL,
                    "param[{pi}][{wi}]: fd={fd} analytic={an}"
                );
            }
        }
        let mut xm = x.clone();
        for i in 0..xm.as_slice().len() {
            let orig = xm.as_slice()[i];
            xm.as_mut_slice()[i] = orig + H as f32;
            let lp = tight_loss(layer, &xm);
            xm.as_mut_slice()[i] = orig - H as f32;
            let lm = tight_loss(layer, &xm);
            xm.as_mut_slice()[i] = orig;
            let fd = (lp - lm) / (2.0 * H);
            let an = gx.as_slice()[i] as f64;
            let denom = fd.abs().max(an.abs()).max(1.0);
            assert!(
                (fd - an).abs() / denom < TOL,
                "input[{i}]: fd={fd} analytic={an}"
            );
        }
    }

    /// Smallest absolute pre-activation of a dense layer over a batch —
    /// the ReLU kink margin the tight checks need.
    fn dense_preact_margin(seed: u64, x: &Matrix, in_dim: usize, out_dim: usize) -> f32 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut probe = Dense::new(&mut rng, in_dim, out_dim, Activation::Identity);
        let z = probe.forward(x);
        z.as_slice()
            .iter()
            .fold(f32::INFINITY, |m, v| m.min(v.abs()))
    }

    #[test]
    fn dense_gradients_check_out_at_tight_tolerance_every_activation() {
        let seed = 31;
        for act in [
            Activation::Identity,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Relu,
        ] {
            let mut data_rng = StdRng::seed_from_u64(77);
            let x = batch(&mut data_rng, 3, 5);
            if act == Activation::Relu {
                // ±H perturbations move a pre-activation by at most
                // H·max(|x|, |w|) ≈ 5e-3; a 0.03 margin keeps the central
                // difference on one side of the kink.
                let margin = dense_preact_margin(seed, &x, 5, 4);
                assert!(margin > 0.03, "ReLU kink margin too small: {margin}");
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let mut l = Layer::Dense(Dense::new(&mut rng, 5, 4, act));
            grad_check_tight(&mut l, &x);
        }
    }

    #[test]
    fn conv1d_gradients_check_out_at_tight_tolerance_every_pool() {
        for pool in [PoolOp::Avg, PoolOp::Sum, PoolOp::Max] {
            let spec = ConvSpec {
                out_channels: 2,
                kernel: 3,
                stride: 2,
                padding: 1,
                pool_size: 2,
                pool,
            };
            let mut data_rng = StdRng::seed_from_u64(88);
            let x = batch(&mut data_rng, 2, 16);
            if pool == PoolOp::Max {
                // Assert every max-pool window has a unique winner with
                // margin, so ±H perturbations cannot flip the argmax. The
                // probe re-runs the conv with pool_size 1 (raw activated
                // conv outputs) from the same weight seed.
                let probe_spec = ConvSpec {
                    pool_size: 1,
                    pool: PoolOp::Avg,
                    ..spec
                };
                let mut probe = Conv1d::new(
                    &mut StdRng::seed_from_u64(32),
                    2,
                    8,
                    probe_spec,
                    Activation::Tanh,
                );
                let raw = probe.forward(&x);
                let conv_len = probe.conv_len();
                let channels = raw.cols() / conv_len;
                let mut margin = f32::INFINITY;
                for r in 0..raw.rows() {
                    for c in 0..channels {
                        for w0 in (0..conv_len).step_by(spec.pool_size) {
                            let w1 = (w0 + spec.pool_size).min(conv_len);
                            let mut vals: Vec<f32> =
                                (w0..w1).map(|t| raw.get(r, c * conv_len + t)).collect();
                            vals.sort_by(|a, b| b.total_cmp(a));
                            if vals.len() > 1 {
                                margin = margin.min(vals[0] - vals[1]);
                            }
                        }
                    }
                }
                assert!(margin > 0.05, "max-pool tie margin too small: {margin}");
            }
            let mut rng = StdRng::seed_from_u64(32);
            let mut l = Layer::Conv1d(Conv1d::new(&mut rng, 2, 8, spec, Activation::Tanh));
            grad_check_tight(&mut l, &x);
        }
    }

    #[test]
    fn descending_total_cmp_sort_survives_nan() {
        // Regression for the max-pool margin probe above: sorting with
        // `partial_cmp(..).unwrap()` aborted the whole test harness when
        // an activation was NaN. `total_cmp` orders NaN deterministically
        // (+NaN above +inf, -NaN below -inf), so a poisoned probe now
        // fails its margin assertion instead of panicking mid-sort.
        let mut vals = [0.3f32, f32::NAN, 0.7, -f32::NAN, 0.1];
        vals.sort_by(|a, b| b.total_cmp(a));
        assert!(vals[0].is_nan() && vals[0].is_sign_positive());
        assert_eq!(vals[1..4], [0.7, 0.3, 0.1]);
        assert!(vals[4].is_nan() && vals[4].is_sign_negative());
        // A NaN margin can never satisfy the probe's `margin > eps` gate.
        let margin = vals[0] - vals[1];
        assert!(margin.is_nan());
    }

    #[test]
    fn shift_sigmoid_gradients_check_out_at_tight_tolerance() {
        let mut rng = StdRng::seed_from_u64(33);
        let mut l = Layer::ShiftSigmoid(ShiftSigmoid::new(4));
        let x = batch(&mut rng, 3, 4);
        grad_check_tight(&mut l, &x);
    }

    #[test]
    fn dropout_gradients_check_out_at_tight_tolerance() {
        // Inference-mode dropout is the identity; the check still exercises
        // its backward against finite differences like every other layer.
        let mut rng = StdRng::seed_from_u64(34);
        let mut l = Layer::Dropout(Dropout::new(6, 0.5, 9));
        let x = batch(&mut rng, 3, 6);
        grad_check_tight(&mut l, &x);
    }

    #[test]
    fn dense_gradients_check_out() {
        let mut rng = StdRng::seed_from_u64(3);
        for act in [Activation::Identity, Activation::Tanh, Activation::Sigmoid] {
            let mut l = Layer::Dense(Dense::new(&mut rng, 5, 4, act));
            let x = batch(&mut rng, 3, 5);
            grad_check(&mut l, &x, 2e-2);
        }
    }

    #[test]
    fn nonneg_dense_stays_nonneg_after_constraint() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut l = Dense::new_nonneg(&mut rng, 4, 3, Activation::Relu);
        // Push weights negative, then re-apply the constraint.
        for w in l.w.as_mut_slice() {
            *w -= 10.0;
        }
        l.apply_constraints();
        assert!(l.weights().as_slice().iter().all(|w| *w >= 0.0));
    }

    #[test]
    fn nonneg_cols_only_clamps_masked_columns() {
        let mut rng = StdRng::seed_from_u64(5);
        let l = Dense::new(&mut rng, 3, 2, Activation::Identity)
            .with_nonneg_cols(vec![false, true, false]);
        // Masked column (index 1) must already be non-negative.
        for o in 0..2 {
            assert!(l.weights().get(o, 1) >= 0.0);
        }
    }

    #[test]
    fn conv1d_gradients_check_out_all_pools() {
        let mut rng = StdRng::seed_from_u64(6);
        for pool in [PoolOp::Avg, PoolOp::Sum, PoolOp::Max] {
            let spec = ConvSpec {
                out_channels: 2,
                kernel: 3,
                stride: 2,
                padding: 1,
                pool_size: 2,
                pool,
            };
            let mut l = Layer::Conv1d(Conv1d::new(&mut rng, 2, 8, spec, Activation::Tanh));
            let x = batch(&mut rng, 2, 16);
            // Max pooling is piecewise-linear; a slightly looser tolerance
            // absorbs ties near window boundaries.
            grad_check(&mut l, &x, 3e-2);
        }
    }

    #[test]
    fn conv1d_segment_layout_evaluates_one_filter_per_segment() {
        // kernel = stride = segment length: output t-th position only sees
        // the t-th query segment — the f() layout of §3.2.
        let mut rng = StdRng::seed_from_u64(7);
        let spec = ConvSpec {
            out_channels: 1,
            kernel: 4,
            stride: 4,
            padding: 0,
            pool_size: 1,
            pool: PoolOp::Avg,
        };
        let mut l = Conv1d::new(&mut rng, 1, 8, spec, Activation::Identity);
        assert_eq!(l.conv_len(), 2);
        let x1 = Matrix::from_row(&[1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0]);
        let x2 = Matrix::from_row(&[1.0, 2.0, 3.0, 4.0, 9.0, 9.0, 9.0, 9.0]);
        let y1 = l.forward(&x1);
        let y2 = l.forward(&x2);
        // Changing segment 2 must not change the output for segment 1.
        assert!((y1.get(0, 0) - y2.get(0, 0)).abs() < 1e-6);
        assert!((y1.get(0, 1) - y2.get(0, 1)).abs() > 1e-6);
    }

    #[test]
    fn shift_sigmoid_gradients_check_out() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut l = Layer::ShiftSigmoid(ShiftSigmoid::new(4));
        let x = batch(&mut rng, 3, 4);
        grad_check(&mut l, &x, 2e-2);
    }

    #[test]
    fn dropout_is_identity_at_inference() {
        let mut rng = StdRng::seed_from_u64(10);
        let x = batch(&mut rng, 3, 6);
        let mut l = Dropout::new(6, 0.5, 1);
        let y = l.forward(&x);
        assert_eq!(y, x, "inference-mode dropout must pass through");
        // Backward is likewise the identity.
        let g = l.backward(&x);
        assert_eq!(g, x);
    }

    #[test]
    fn dropout_training_zeroes_and_rescales() {
        let mut l = Dropout::new(64, 0.5, 2);
        l.set_training(true);
        let x = Matrix::from_vec(4, 64, vec![1.0; 256]);
        let y = l.forward(&x);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let twos = y
            .as_slice()
            .iter()
            .filter(|&&v| (v - 2.0).abs() < 1e-6)
            .count();
        assert_eq!(zeros + twos, 256, "survivors must be scaled by 1/(1-p)");
        assert!(
            zeros > 64 && zeros < 192,
            "~half the units should drop, got {zeros}"
        );
        // Expectation is preserved: mean stays ≈ 1.
        let mean: f32 = y.as_slice().iter().sum::<f32>() / 256.0;
        assert!((mean - 1.0).abs() < 0.25, "mean {mean}");
    }

    #[test]
    fn dropout_backward_uses_the_same_mask() {
        let mut l = Dropout::new(32, 0.3, 3);
        l.set_training(true);
        let x = Matrix::from_vec(2, 32, vec![1.0; 64]);
        let y = l.forward(&x);
        let g = l.backward(&Matrix::from_vec(2, 32, vec![1.0; 64]));
        // Gradient is zero exactly where the activation was dropped.
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn infer_matches_forward_for_every_layer_kind() {
        let mut rng = StdRng::seed_from_u64(11);
        let spec = ConvSpec {
            out_channels: 2,
            kernel: 3,
            stride: 2,
            padding: 1,
            pool_size: 2,
            pool: PoolOp::Max,
        };
        let mut layers = vec![
            Layer::Dense(Dense::new(&mut rng, 6, 4, Activation::Tanh)),
            Layer::Conv1d(Conv1d::new(&mut rng, 2, 3, spec, Activation::Relu)),
            Layer::ShiftSigmoid(ShiftSigmoid::new(6)),
            Layer::Dropout(Dropout::new(6, 0.5, 1)),
        ];
        let mut scratch = Scratch::new();
        for layer in &mut layers {
            let x = batch(&mut rng, 5, layer.in_dim());
            let y_train = layer.forward(&x);
            let y_infer = layer.infer(&x, &mut scratch);
            assert_eq!(
                y_train.as_slice(),
                y_infer.as_slice(),
                "infer must be bitwise identical to forward"
            );
            scratch.recycle(y_infer);
        }
    }

    #[test]
    fn pool_len_covers_remainder_window() {
        let mut rng = StdRng::seed_from_u64(9);
        let spec = ConvSpec {
            out_channels: 1,
            kernel: 2,
            stride: 1,
            padding: 0,
            pool_size: 4,
            pool: PoolOp::Sum,
        };
        // conv_len = 6, pool_size 4 → windows [0,4) and [4,6).
        let l = Conv1d::new(&mut rng, 1, 7, spec, Activation::Identity);
        assert_eq!(l.conv_len(), 6);
        assert_eq!(l.pool_len(), 2);
        assert_eq!(l.out_dim(), 2);
    }
}
