//! Weight initialization.
//!
//! Everything is seeded by the caller so training runs are reproducible; no
//! global RNG state exists anywhere in the workspace.

use rand::Rng;

/// He (Kaiming) uniform initialization, the default for ReLU layers.
///
/// Samples from `U(-b, b)` with `b = sqrt(6 / fan_in)`.
pub fn he_uniform<R: Rng>(rng: &mut R, fan_in: usize, n: usize) -> Vec<f32> {
    let bound = (6.0 / fan_in.max(1) as f32).sqrt();
    (0..n).map(|_| rng.gen_range(-bound..=bound)).collect()
}

/// Xavier/Glorot uniform initialization, used for sigmoid/tanh/linear layers.
///
/// Samples from `U(-b, b)` with `b = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize, n: usize) -> Vec<f32> {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    (0..n).map(|_| rng.gen_range(-bound..=bound)).collect()
}

/// Non-negative initialization for positivity-constrained (monotone) layers:
/// `U(0, b)` with the Xavier bound, so the constraint holds from step zero.
pub fn nonneg_uniform<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize, n: usize) -> Vec<f32> {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    (0..n).map(|_| rng.gen_range(0.0..=bound)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn he_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = he_uniform(&mut rng, 24, 1000);
        let b = (6.0f32 / 24.0).sqrt();
        assert!(w.iter().all(|x| x.abs() <= b));
        // Mean should be near zero for a symmetric distribution.
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.05);
    }

    #[test]
    fn nonneg_init_is_nonneg() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(nonneg_uniform(&mut rng, 8, 8, 500)
            .iter()
            .all(|x| *x >= 0.0));
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = he_uniform(&mut StdRng::seed_from_u64(7), 16, 64);
        let b = he_uniform(&mut StdRng::seed_from_u64(7), 16, 64);
        assert_eq!(a, b);
    }
}
