//! Pointwise activation functions.
//!
//! Derivatives are computed from the *output* value, which is exact for all
//! the activations used here (ReLU, sigmoid, tanh, identity) and lets layers
//! cache only their output.

use serde::{Deserialize, Serialize};

/// Pointwise nonlinearity applied by a layer after its affine map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)` — used by every hidden layer in the paper (§5.1).
    Relu,
    /// Logistic sigmoid — the global model's output nonlinearity.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// No nonlinearity — the cardinality output layer is linear (§5.1).
    Identity,
}

impl Activation {
    /// Applies the activation in place to a buffer.
    #[inline]
    pub fn apply(self, xs: &mut [f32]) {
        match self {
            Activation::Relu => {
                for x in xs {
                    if *x < 0.0 {
                        *x = 0.0;
                    }
                }
            }
            Activation::Sigmoid => {
                for x in xs {
                    *x = sigmoid(*x);
                }
            }
            Activation::Tanh => {
                for x in xs {
                    *x = x.tanh();
                }
            }
            Activation::Identity => {}
        }
    }

    /// Derivative evaluated from the activation *output* `y`.
    #[inline]
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Identity => 1.0,
        }
    }

    /// Whether the activation is monotone non-decreasing. All supported
    /// activations are; the monotonicity argument of §5.1 relies on this.
    pub fn is_monotone(self) -> bool {
        true
    }
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut v = vec![-1.0, 0.0, 2.0];
        Activation::Relu.apply(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 2.0]);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 1e-3);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        for act in [
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Identity,
        ] {
            for &x in &[-0.9f32, -0.3, 0.4, 1.2] {
                let h = 1e-3f32;
                let mut lo = [x - h];
                let mut hi = [x + h];
                act.apply(&mut lo);
                act.apply(&mut hi);
                let fd = (hi[0] - lo[0]) / (2.0 * h);
                let mut y = [x];
                act.apply(&mut y);
                let an = act.derivative_from_output(y[0]);
                assert!(
                    (fd - an).abs() < 5e-3,
                    "{act:?} at {x}: fd={fd} analytic={an}"
                );
            }
        }
    }
}
