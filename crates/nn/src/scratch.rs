//! Reusable buffer pool for the immutable inference path.
//!
//! The training forward pass mutates the network (activation caches for
//! backward), so serving-time callers used to need `&mut` access to a model
//! just to run it. The `infer` family of methods instead threads a
//! caller-owned [`Scratch`] workspace through every layer: the model stays
//! shared (`&self`, hence `Sync`), and the per-call allocations are
//! recycled across calls. One `Scratch` per thread is the intended pattern
//! (e.g. one per scoped worker in the batched GL estimator).

use crate::tensor::Matrix;

/// A pool of `f32` buffers backing temporary [`Matrix`] values during
/// inference. `take` hands out a zeroed matrix of the requested shape,
/// reusing the largest recycled allocation that fits; `recycle` returns a
/// matrix's backing storage to the pool.
///
/// The pool is deliberately tiny and allocation-order agnostic: forward
/// passes ping-pong between at most a handful of live matrices, so a small
/// free list captures essentially all reuse.
#[derive(Debug, Default)]
pub struct Scratch {
    free: Vec<Vec<f32>>,
}

impl Scratch {
    /// Number of free buffers kept around between `take` calls.
    const MAX_POOLED: usize = 8;

    pub fn new() -> Self {
        Scratch::default()
    }

    /// Hands out a `rows × cols` matrix of zeros, reusing pooled storage
    /// when a large-enough buffer is available.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        // Prefer the smallest pooled buffer with enough capacity so large
        // buffers stay available for large requests.
        let mut best: Option<usize> = None;
        for (i, buf) in self.free.iter().enumerate() {
            if buf.capacity() >= len
                && best.is_none_or(|b| buf.capacity() < self.free[b].capacity())
            {
                best = Some(i);
            }
        }
        let mut data = match best {
            Some(i) => self.free.swap_remove(i),
            None => Vec::with_capacity(len),
        };
        data.clear();
        data.resize(len, 0.0);
        Matrix::from_vec(rows, cols, data)
    }

    /// Returns a matrix's backing buffer to the pool for later reuse.
    pub fn recycle(&mut self, m: Matrix) {
        if self.free.len() < Self::MAX_POOLED {
            self.free.push(m.into_vec());
        }
    }

    /// Number of buffers currently pooled (diagnostics / tests).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

thread_local! {
    static THREAD_SCRATCH: std::cell::RefCell<Scratch> =
        std::cell::RefCell::new(Scratch::new());
}

/// Runs `f` with this thread's shared [`Scratch`] pool. Estimators use this
/// so `estimate(&self, ..)` needs no workspace argument: each OS thread
/// (including each scoped worker in the batched GL path) gets its own pool,
/// reused across calls.
///
/// # Panics
/// Panics on re-entrant use from within `f` (the pool is singly borrowed);
/// take an explicit `Scratch` instead if a nested pass is ever needed.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    THREAD_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_scratch_persists_buffers_across_calls() {
        // Warm the pool, then observe the buffer is still pooled.
        let before = with_thread_scratch(|s| {
            let m = s.take(4, 4);
            s.recycle(m);
            s.pooled()
        });
        assert!(before >= 1);
        let after = with_thread_scratch(|s| s.pooled());
        assert_eq!(before, after);
    }

    #[test]
    fn take_returns_zeroed_matrix_of_requested_shape() {
        let mut s = Scratch::new();
        let mut m = s.take(3, 4);
        assert_eq!((m.rows(), m.cols()), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        m.as_mut_slice().fill(7.0);
        s.recycle(m);
        // Reused storage must come back zeroed.
        let m2 = s.take(2, 5);
        assert!(m2.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn recycled_buffers_are_reused() {
        let mut s = Scratch::new();
        let m = s.take(8, 8);
        let ptr = m.as_slice().as_ptr();
        s.recycle(m);
        assert_eq!(s.pooled(), 1);
        // A smaller request reuses the same allocation.
        let m2 = s.take(4, 4);
        assert_eq!(m2.as_slice().as_ptr(), ptr);
        assert_eq!(s.pooled(), 0);
    }

    #[test]
    fn pool_size_is_bounded() {
        let mut s = Scratch::new();
        let mats: Vec<Matrix> = (0..20).map(|_| s.take(2, 2)).collect();
        for m in mats {
            s.recycle(m);
        }
        assert!(s.pooled() <= Scratch::MAX_POOLED);
    }
}
