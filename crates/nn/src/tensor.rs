//! Flat row-major `f32` matrices and the small set of kernels the models use.
//!
//! Following the perf-book idioms used across this workspace: one contiguous
//! allocation per matrix, no per-element boxing, and all hot loops written
//! over slices so they bound-check once per row.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
///
/// `rows` is the batch dimension throughout this crate: a batch of `B`
/// feature vectors of width `d` is a `B × d` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// A `1 × d` row matrix wrapping one feature vector.
    pub fn from_row(row: &[f32]) -> Self {
        Matrix {
            rows: 1,
            cols: row.len(),
            data: row.to_vec(),
        }
    }

    /// Builds a `rows × cols` matrix by stacking equal-length rows.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows passed to from_rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Consumes the matrix, returning its backing buffer (used by
    /// [`crate::scratch::Scratch`] to recycle allocations).
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// `self · otherᵀ` where `other` is `n × cols`: the core kernel for a
    /// dense layer whose weight matrix stores one output unit per row.
    ///
    /// Result is `rows × n`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_nt`] writing into a caller-owned output matrix
    /// (shape `rows × other.rows`) — the allocation-free inference kernel.
    /// Dispatches to the register-blocked kernel in [`crate::gemm`] for
    /// non-trivial shapes.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "inner dimensions differ in matmul_nt"
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.rows),
            "matmul_nt output shape mismatch"
        );
        crate::gemm::matmul_nt(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.rows,
        );
    }

    /// `selfᵀ · other`, producing `cols × other.cols`. Used for weight
    /// gradients: `dW = dYᵀ · X` arranged as `[out, in]`.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "outer dimensions differ in matmul_tn"
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        crate::gemm::matmul_tn(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
        );
        out
    }

    /// Plain `self · other` (`rows × other.cols`). Used for input gradients:
    /// `dX = dY · W` with `W` stored `[out, in]`.
    pub fn matmul_nn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "inner dimensions differ in matmul_nn"
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        crate::gemm::matmul_nn(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
        );
        out
    }

    /// Adds `bias` (length `cols`) to every row in place.
    pub fn add_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (x, b) in self.row_mut(r).iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Concatenates matrices with equal row counts along the column axis.
    ///
    /// # Panics
    /// Panics if `parts` is empty (the row count would be unknowable) or if
    /// the parts disagree on row count — including when some parts have
    /// zero rows. Zero-row inputs are otherwise valid and produce a
    /// `0 × Σcols` result that preserves the column shape.
    pub fn hconcat(parts: &[&Matrix]) -> Matrix {
        let (rows, cols) = Self::hconcat_shape(parts);
        let mut out = Matrix::zeros(rows, cols);
        Self::hconcat_into(parts, &mut out);
        out
    }

    /// Validated output shape of [`Matrix::hconcat`]; shared with the
    /// scratch-buffer variant so both check ragged inputs up front.
    fn hconcat_shape(parts: &[&Matrix]) -> (usize, usize) {
        let rows = parts
            .first()
            // cardest-lint: allow(panic-path): zero-part hconcat has no shape; documented panic, regression-tested
            .unwrap_or_else(|| panic!("hconcat of zero matrices has no defined shape"))
            .rows;
        for m in parts {
            assert_eq!(m.rows, rows, "hconcat requires equal row counts");
        }
        (rows, parts.iter().map(|m| m.cols).sum())
    }

    /// [`Matrix::hconcat`] writing into a caller-owned output matrix of
    /// shape `rows × Σcols` (the batch hot path reuses scratch buffers).
    pub fn hconcat_into(parts: &[&Matrix], out: &mut Matrix) {
        let (rows, cols) = Self::hconcat_shape(parts);
        assert_eq!(
            (out.rows, out.cols),
            (rows, cols),
            "hconcat output shape mismatch"
        );
        for r in 0..rows {
            let mut off = 0;
            let orow = out.row_mut(r);
            for m in parts {
                orow[off..off + m.cols].copy_from_slice(m.row(r));
                off += m.cols;
            }
        }
    }

    /// Splits columns back into widths `widths` (inverse of [`Matrix::hconcat`]).
    ///
    /// # Panics
    /// Panics if `widths` is empty or does not sum to the column count.
    /// Zero-row matrices split into zero-row parts of the requested widths.
    pub fn hsplit(&self, widths: &[usize]) -> Vec<Matrix> {
        assert!(
            !widths.is_empty(),
            "hsplit into zero parts has no defined shape"
        );
        assert_eq!(
            widths.iter().sum::<usize>(),
            self.cols,
            "hsplit widths mismatch"
        );
        let mut out: Vec<Matrix> = widths
            .iter()
            .map(|&w| Matrix::zeros(self.rows, w))
            .collect();
        for r in 0..self.rows {
            let mut off = 0;
            let row = self.row(r);
            for (m, &w) in out.iter_mut().zip(widths) {
                m.row_mut(r).copy_from_slice(&row[off..off + w]);
                off += w;
            }
        }
        out
    }

    /// Sums all rows into a single `1 × cols` matrix (sum pooling over a set
    /// of embeddings, §4 of the paper).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        let orow = out.row_mut(0);
        for r in 0..self.rows {
            for (o, x) in orow.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Gathers the given rows into a new matrix (used by the join router to
    /// select the member queries assigned to one data segment).
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (o, &i) in (0..idx.len()).zip(idx) {
            out.row_mut(o).copy_from_slice(self.row(i));
        }
        out
    }

    /// Frobenius-norm of the matrix; handy for grad-clipping and tests.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Scales all entries in place.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }
}

/// Dot product over equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Eight independent accumulators break the sequential FP dependency
    // chain so the loop vectorizes; the tail is folded in scalar order.
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    for i in 0..chunks {
        let (xa, xb) = (
            &a[i * LANES..(i + 1) * LANES],
            &b[i * LANES..(i + 1) * LANES],
        );
        for l in 0..LANES {
            acc[l] += xa[l] * xb[l];
        }
    }
    let mut s = ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]));
    for (x, y) in a[chunks * LANES..].iter().zip(&b[chunks * LANES..]) {
        s += x * y;
    }
    s
}

/// `y += alpha * x` over equal-length slices.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_nt_matches_hand_computation() {
        // a = [[1,2],[3,4]], b = [[5,6],[7,8]] (rows are b's rows)
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        // a · bᵀ = [[1*5+2*6, 1*7+2*8], [3*5+4*6, 3*7+4*8]]
        let c = a.matmul_nt(&b);
        assert_eq!(c.as_slice(), &[17.0, 23.0, 39.0, 53.0]);
    }

    #[test]
    fn matmul_nn_matches_hand_computation() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.0, 1.0, 1.0]);
        let c = a.matmul_nn(&b);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 4.0, 3.0, 4.0, 10.0]);
    }

    #[test]
    fn matmul_tn_is_transpose_of_nt_path() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![1.0, 1.0, 2.0, 0.0, 0.0, 3.0]);
        // aᵀ·b = [[1*1+3*2+5*0, 1*1+3*0+5*3],[2*1+4*2+6*0, 2*1+4*0+6*3]]
        let c = a.matmul_tn(&b);
        assert_eq!(c.as_slice(), &[7.0, 16.0, 10.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "zero matrices")]
    fn hconcat_empty_input_panics() {
        let _ = Matrix::hconcat(&[]);
    }

    #[test]
    #[should_panic(expected = "equal row counts")]
    fn hconcat_ragged_rows_panic() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 1);
        let _ = Matrix::hconcat(&[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "equal row counts")]
    fn hconcat_zero_row_ragged_panics_before_writing() {
        // A 0-row part mixed with non-empty parts is ragged, not "empty";
        // the shape check must reject it up front.
        let a = Matrix::zeros(0, 2);
        let b = Matrix::zeros(4, 2);
        let _ = Matrix::hconcat(&[&a, &b]);
    }

    #[test]
    fn hconcat_of_zero_row_parts_keeps_column_shape() {
        let a = Matrix::zeros(0, 2);
        let b = Matrix::zeros(0, 5);
        let c = Matrix::hconcat(&[&a, &b]);
        assert_eq!((c.rows(), c.cols()), (0, 7));
        let parts = c.hsplit(&[2, 5]);
        assert_eq!((parts[0].rows(), parts[0].cols()), (0, 2));
        assert_eq!((parts[1].rows(), parts[1].cols()), (0, 5));
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn hconcat_into_wrong_output_shape_panics() {
        let a = Matrix::zeros(2, 3);
        let mut out = Matrix::zeros(2, 4);
        Matrix::hconcat_into(&[&a], &mut out);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn hsplit_empty_widths_panics() {
        let m = Matrix::zeros(2, 3);
        let _ = m.hsplit(&[]);
    }

    #[test]
    #[should_panic(expected = "widths mismatch")]
    fn hsplit_mismatched_widths_panic() {
        let m = Matrix::zeros(2, 3);
        let _ = m.hsplit(&[2, 2]);
    }

    #[test]
    fn hconcat_hsplit_roundtrip() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 1, vec![9.0, 8.0]);
        let c = Matrix::hconcat(&[&a, &b]);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.row(0), &[1.0, 2.0, 9.0]);
        let parts = c.hsplit(&[2, 1]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn sum_rows_and_gather() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sum_rows().as_slice(), &[9.0, 12.0]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g.as_slice(), &[5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    fn add_bias_applies_per_row() {
        let mut a = Matrix::zeros(2, 3);
        a.add_bias(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_shape() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }
}
