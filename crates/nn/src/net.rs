//! Network containers: [`Sequential`] layer stacks and the multi-branch
//! [`BranchNet`] used by every estimator in the paper (embeddings `E1..E6`
//! feeding an output module `F` or `G`, Figs. 2/5/7).

use crate::layers::{Layer, ParamSlice};
use crate::scratch::Scratch;
use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A stack of layers applied in order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Sequential {
    layers: Vec<Layer>,
}

impl Sequential {
    pub fn new(layers: Vec<Layer>) -> Self {
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_dim(),
                pair[1].in_dim(),
                "layer output width {} does not feed next layer input width {}",
                pair[0].out_dim(),
                pair[1].in_dim()
            );
        }
        Sequential { layers }
    }

    /// An empty stack acting as the identity (used when a feature is fed
    /// through unembedded).
    pub fn identity() -> Self {
        Sequential { layers: Vec::new() }
    }

    pub fn push(&mut self, layer: Layer) {
        if let Some(last) = self.layers.last() {
            assert_eq!(
                last.out_dim(),
                layer.in_dim(),
                "pushed layer width mismatch"
            );
        }
        self.layers.push(layer);
    }

    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Output width given an input of width `in_dim` (identity stacks pass
    /// the width through).
    pub fn out_dim_for(&self, in_dim: usize) -> usize {
        self.layers.last().map_or(in_dim, |l| l.out_dim())
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut cur = x.clone();
        for l in &mut self.layers {
            cur = l.forward(&cur);
        }
        cur
    }

    /// Runs the stack without mutating it (no backward caches), recycling
    /// intermediate activations through the caller's [`Scratch`]. Any batch
    /// size; identical math to [`Sequential::forward`].
    pub fn infer(&self, x: &Matrix, scratch: &mut Scratch) -> Matrix {
        let Some((first, rest)) = self.layers.split_first() else {
            // Identity stack: hand back a scratch-owned copy so callers can
            // recycle the result uniformly.
            let mut y = scratch.take(x.rows(), x.cols());
            y.as_mut_slice().copy_from_slice(x.as_slice());
            return y;
        };
        let mut cur = first.infer(x, scratch);
        for l in rest {
            let next = l.infer(&cur, scratch);
            scratch.recycle(cur);
            cur = next;
        }
        cur
    }

    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    pub fn params_mut(&mut self) -> Vec<ParamSlice<'_>> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Read-only parameter views in [`params_mut`](Self::params_mut) order.
    pub fn param_values(&self) -> Vec<&[f32]> {
        self.layers.iter().flat_map(|l| l.param_values()).collect()
    }

    /// Copies every parameter tensor into an owned snapshot (used by
    /// training checkpoints).
    pub fn snapshot_params(&self) -> Vec<Vec<f32>> {
        self.param_values()
            .into_iter()
            .map(<[f32]>::to_vec)
            .collect()
    }

    /// Restores parameters from a [`snapshot_params`](Self::snapshot_params)
    /// snapshot of the same architecture.
    pub fn restore_params(&mut self, snapshot: &[Vec<f32>]) {
        let mut params = self.params_mut();
        assert_eq!(params.len(), snapshot.len(), "snapshot shape mismatch");
        for (p, s) in params.iter_mut().zip(snapshot) {
            p.values.copy_from_slice(s);
        }
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grads(&mut self) {
        for p in self.params_mut().iter_mut() {
            p.grads.fill(0.0);
        }
    }

    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    pub fn apply_constraints(&mut self) {
        for l in &mut self.layers {
            l.apply_constraints();
        }
    }
}

/// A multi-branch network: each input feature runs through its own branch
/// (embedding), the branch outputs are concatenated, and a head produces the
/// final output.
///
/// This is the shape of every model in the paper:
/// `F(E1(x_q) ⊕ E2(x_τ) ⊕ E3(x_D))` for local estimators (Fig. 2) and
/// `G(E4(x_q) ⊕ E5(x_τ) ⊕ E6(x_C))` for the global model (Fig. 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BranchNet {
    branches: Vec<Sequential>,
    head: Sequential,
    /// Branch input widths, fixed at construction for shape checking.
    in_dims: Vec<usize>,
    /// Branch output widths (cached for splitting gradients).
    branch_out_dims: Vec<usize>,
}

impl BranchNet {
    /// Builds a branch net. `in_dims[i]` is the feature width entering
    /// branch `i`; the head must accept the sum of branch output widths.
    pub fn new(branches: Vec<Sequential>, in_dims: Vec<usize>, head: Sequential) -> Self {
        assert_eq!(
            branches.len(),
            in_dims.len(),
            "one input width per branch required"
        );
        let branch_out_dims: Vec<usize> = branches
            .iter()
            .zip(&in_dims)
            .map(|(b, &d)| b.out_dim_for(d))
            .collect();
        let concat: usize = branch_out_dims.iter().sum();
        if let Some(first) = head.layers().first() {
            assert_eq!(
                first.in_dim(),
                concat,
                "head expects input width {}, branches produce {}",
                first.in_dim(),
                concat
            );
        }
        BranchNet {
            branches,
            head,
            in_dims,
            branch_out_dims,
        }
    }

    pub fn num_branches(&self) -> usize {
        self.branches.len()
    }

    pub fn in_dims(&self) -> &[usize] {
        &self.in_dims
    }

    /// Width of the concatenated embedding entering the head.
    pub fn concat_dim(&self) -> usize {
        self.branch_out_dims.iter().sum()
    }

    /// Runs all branches on their inputs and the head on the concatenation.
    ///
    /// # Panics
    /// Panics if the number or widths of inputs do not match the branches.
    pub fn forward(&mut self, inputs: &[&Matrix]) -> Matrix {
        assert_eq!(inputs.len(), self.branches.len(), "input count mismatch");
        let embs: Vec<Matrix> = self
            .branches
            .iter_mut()
            .zip(inputs)
            .map(|(b, x)| b.forward(x))
            .collect();
        let refs: Vec<&Matrix> = embs.iter().collect();
        let concat = Matrix::hconcat(&refs);
        self.head.forward(&concat)
    }

    /// Runs only branch `i` (used by the join model, which embeds member
    /// queries per branch before sum pooling).
    pub fn forward_branch(&mut self, i: usize, x: &Matrix) -> Matrix {
        self.branches[i].forward(x)
    }

    /// Runs the head on an externally assembled concatenated embedding.
    pub fn forward_head(&mut self, concat: &Matrix) -> Matrix {
        self.head.forward(concat)
    }

    /// Immutable full forward pass over a batch: every branch, the
    /// concatenation, and the head run without touching the model, so a
    /// shared `&BranchNet` can serve many threads (one [`Scratch`] each).
    /// Identical math to [`BranchNet::forward`].
    pub fn infer(&self, inputs: &[&Matrix], scratch: &mut Scratch) -> Matrix {
        assert_eq!(inputs.len(), self.branches.len(), "input count mismatch");
        let embs: Vec<Matrix> = self
            .branches
            .iter()
            .zip(inputs)
            .map(|(b, x)| b.infer(x, scratch))
            .collect();
        let rows = embs.first().map_or(0, |m| m.rows());
        let mut concat = scratch.take(rows, self.concat_dim());
        {
            let refs: Vec<&Matrix> = embs.iter().collect();
            Matrix::hconcat_into(&refs, &mut concat);
        }
        for e in embs {
            scratch.recycle(e);
        }
        let y = self.head.infer(&concat, scratch);
        scratch.recycle(concat);
        y
    }

    /// Immutable [`BranchNet::forward_branch`].
    pub fn infer_branch(&self, i: usize, x: &Matrix, scratch: &mut Scratch) -> Matrix {
        self.branches[i].infer(x, scratch)
    }

    /// Immutable [`BranchNet::forward_head`].
    pub fn infer_head(&self, concat: &Matrix, scratch: &mut Scratch) -> Matrix {
        self.head.infer(concat, scratch)
    }

    /// Back-propagates through head and branches, returning per-branch input
    /// gradients.
    pub fn backward(&mut self, grad_out: &Matrix) -> Vec<Matrix> {
        let gconcat = self.head.backward(grad_out);
        let parts = gconcat.hsplit(&self.branch_out_dims);
        self.branches
            .iter_mut()
            .zip(parts)
            .map(|(b, g)| b.backward(&g))
            .collect()
    }

    /// Back-propagates only through the head, returning the gradient w.r.t.
    /// the concatenated embedding (the join model splits it manually).
    pub fn backward_head(&mut self, grad_out: &Matrix) -> Matrix {
        self.head.backward(grad_out)
    }

    /// Back-propagates an embedding gradient through branch `i`.
    pub fn backward_branch(&mut self, i: usize, grad: &Matrix) -> Matrix {
        self.branches[i].backward(grad)
    }

    pub fn branch_out_dims(&self) -> &[usize] {
        &self.branch_out_dims
    }

    pub fn branches_mut(&mut self) -> &mut [Sequential] {
        &mut self.branches
    }

    pub fn head_mut(&mut self) -> &mut Sequential {
        &mut self.head
    }

    pub fn params_mut(&mut self) -> Vec<ParamSlice<'_>> {
        let mut out: Vec<ParamSlice<'_>> = Vec::new();
        for b in &mut self.branches {
            out.extend(b.params_mut());
        }
        out.extend(self.head.params_mut());
        out
    }

    /// Read-only parameter views in [`params_mut`](Self::params_mut) order
    /// (branches first, then the head).
    pub fn param_values(&self) -> Vec<&[f32]> {
        let mut out: Vec<&[f32]> = Vec::new();
        for b in &self.branches {
            out.extend(b.param_values());
        }
        out.extend(self.head.param_values());
        out
    }

    /// Copies every parameter tensor into an owned snapshot (used by
    /// training checkpoints).
    pub fn snapshot_params(&self) -> Vec<Vec<f32>> {
        self.param_values()
            .into_iter()
            .map(<[f32]>::to_vec)
            .collect()
    }

    /// Restores parameters from a [`snapshot_params`](Self::snapshot_params)
    /// snapshot of the same architecture. Gradient accumulators are left
    /// untouched; pair with [`zero_grads`](Self::zero_grads) when rolling
    /// back mid-step.
    pub fn restore_params(&mut self, snapshot: &[Vec<f32>]) {
        let mut params = self.params_mut();
        assert_eq!(params.len(), snapshot.len(), "snapshot shape mismatch");
        for (p, s) in params.iter_mut().zip(snapshot) {
            p.values.copy_from_slice(s);
        }
    }

    /// Copies parameter values (not gradients) from an identically shaped
    /// net — how gradient-shard replicas sync with the master each batch.
    pub fn copy_params_from(&mut self, other: &Self) {
        let mut params = self.params_mut();
        let src = other.param_values();
        assert_eq!(params.len(), src.len(), "architecture mismatch");
        for (p, s) in params.iter_mut().zip(src) {
            p.values.copy_from_slice(s);
        }
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grads(&mut self) {
        for p in self.params_mut().iter_mut() {
            p.grads.fill(0.0);
        }
    }

    /// All parameters flattened into one vector in deterministic
    /// [`params_mut`](Self::params_mut) order — handy for bit-exact weight
    /// comparisons in determinism tests.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for v in self.param_values() {
            out.extend_from_slice(v);
        }
        out
    }

    pub fn param_count(&self) -> usize {
        self.branches.iter().map(|b| b.param_count()).sum::<usize>() + self.head.param_count()
    }

    /// Model size in bytes if parameters were exported as `f32` (Table 5
    /// counts model sizes this way).
    pub fn param_bytes(&self) -> usize {
        self.param_count() * std::mem::size_of::<f32>()
    }

    pub fn apply_constraints(&mut self) {
        for b in &mut self.branches {
            b.apply_constraints();
        }
        self.head.apply_constraints();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::layers::Dense;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
        Matrix::from_vec(r, c, (0..r * c).map(|_| rng.gen_range(-1.0..1.0)).collect())
    }

    #[test]
    fn sequential_rejects_mismatched_layers() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Layer::Dense(Dense::new(&mut rng, 4, 3, Activation::Relu));
        let b = Layer::Dense(Dense::new(&mut rng, 5, 2, Activation::Relu));
        let result = std::panic::catch_unwind(|| Sequential::new(vec![a, b]));
        assert!(result.is_err());
    }

    #[test]
    fn branchnet_forward_shape_and_identity_branch() {
        let mut rng = StdRng::seed_from_u64(2);
        let b1 = Sequential::new(vec![Layer::Dense(Dense::new(
            &mut rng,
            6,
            4,
            Activation::Relu,
        ))]);
        let b2 = Sequential::identity(); // raw 1-d threshold straight through
        let head = Sequential::new(vec![Layer::Dense(Dense::new(
            &mut rng,
            5,
            1,
            Activation::Identity,
        ))]);
        let mut net = BranchNet::new(vec![b1, b2], vec![6, 1], head);
        assert_eq!(net.concat_dim(), 5);
        let xq = rand_matrix(&mut rng, 3, 6);
        let xt = rand_matrix(&mut rng, 3, 1);
        let y = net.forward(&[&xq, &xt]);
        assert_eq!((y.rows(), y.cols()), (3, 1));
    }

    #[test]
    fn branchnet_end_to_end_gradient_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let make = |rng: &mut StdRng| {
            let b1 = Sequential::new(vec![Layer::Dense(Dense::new(rng, 4, 3, Activation::Tanh))]);
            let b2 = Sequential::new(vec![Layer::Dense(Dense::new(
                rng,
                2,
                2,
                Activation::Sigmoid,
            ))]);
            let head = Sequential::new(vec![
                Layer::Dense(Dense::new(rng, 5, 4, Activation::Tanh)),
                Layer::Dense(Dense::new(rng, 4, 1, Activation::Identity)),
            ]);
            BranchNet::new(vec![b1, b2], vec![4, 2], head)
        };
        let mut net = make(&mut rng);
        let x1 = rand_matrix(&mut rng, 2, 4);
        let x2 = rand_matrix(&mut rng, 2, 2);

        let loss = |net: &mut BranchNet, x1: &Matrix, x2: &Matrix| -> f32 {
            let y = net.forward(&[x1, x2]);
            0.5 * y.as_slice().iter().map(|v| v * v).sum::<f32>()
        };
        let y = net.forward(&[&x1, &x2]);
        let gs = net.backward(&y);
        // Finite-difference check on the two inputs.
        let h = 2e-3f32;
        for (xi, (x, g)) in [(x1.clone(), &gs[0]), (x2.clone(), &gs[1])]
            .iter()
            .enumerate()
        {
            let mut xp = x.clone();
            for i in 0..xp.as_slice().len() {
                let orig = xp.as_slice()[i];
                xp.as_mut_slice()[i] = orig + h;
                let lp = if xi == 0 {
                    loss(&mut net, &xp, &x2)
                } else {
                    loss(&mut net, &x1, &xp)
                };
                xp.as_mut_slice()[i] = orig - h;
                let lm = if xi == 0 {
                    loss(&mut net, &xp, &x2)
                } else {
                    loss(&mut net, &x1, &xp)
                };
                xp.as_mut_slice()[i] = orig;
                let fd = (lp - lm) / (2.0 * h);
                let an = g.as_slice()[i];
                assert!(
                    (fd - an).abs() / fd.abs().max(an.abs()).max(1.0) < 2e-2,
                    "branch {xi} input[{i}]: fd={fd} analytic={an}"
                );
            }
        }
    }

    #[test]
    fn sequential_with_dropout_is_deterministic_at_inference() {
        use crate::layers::Dropout;
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Sequential::new(vec![
            Layer::Dense(Dense::new(&mut rng, 4, 8, Activation::Relu)),
            Layer::Dropout(Dropout::new(8, 0.5, 5)),
            Layer::Dense(Dense::new(&mut rng, 8, 2, Activation::Identity)),
        ]);
        assert_eq!(
            net.param_count(),
            4 * 8 + 8 + 8 * 2 + 2,
            "dropout adds no parameters"
        );
        let x = rand_matrix(&mut rng, 3, 4);
        let a = net.forward(&x);
        let b = net.forward(&x);
        assert_eq!(
            a, b,
            "inference must be deterministic with dropout disabled"
        );
    }

    #[test]
    fn branchnet_infer_matches_forward_bitwise() {
        use crate::layers::Dropout;
        let mut rng = StdRng::seed_from_u64(6);
        let b1 = Sequential::new(vec![
            Layer::Dense(Dense::new(&mut rng, 5, 6, Activation::Relu)),
            Layer::Dropout(Dropout::new(6, 0.3, 7)),
            Layer::Dense(Dense::new(&mut rng, 6, 3, Activation::Tanh)),
        ]);
        let b2 = Sequential::identity();
        let head = Sequential::new(vec![
            Layer::Dense(Dense::new(&mut rng, 4, 4, Activation::Sigmoid)),
            Layer::Dense(Dense::new(&mut rng, 4, 1, Activation::Identity)),
        ]);
        let mut net = BranchNet::new(vec![b1, b2], vec![5, 1], head);
        let x1 = rand_matrix(&mut rng, 7, 5);
        let x2 = rand_matrix(&mut rng, 7, 1);
        let y_train = net.forward(&[&x1, &x2]);
        let mut scratch = Scratch::new();
        // Two infer calls through the same scratch: parity and buffer reuse.
        for _ in 0..2 {
            let y_infer = net.infer(&[&x1, &x2], &mut scratch);
            assert_eq!(y_train.as_slice(), y_infer.as_slice());
            scratch.recycle(y_infer);
        }
    }

    #[test]
    fn param_bytes_counts_all_tensors() {
        let mut rng = StdRng::seed_from_u64(4);
        let b = Sequential::new(vec![Layer::Dense(Dense::new(
            &mut rng,
            3,
            2,
            Activation::Relu,
        ))]);
        let head = Sequential::new(vec![Layer::Dense(Dense::new(
            &mut rng,
            2,
            1,
            Activation::Identity,
        ))]);
        let net = BranchNet::new(vec![b], vec![3], head);
        // (3*2 + 2) + (2*1 + 1) = 11 parameters.
        assert_eq!(net.param_count(), 11);
        assert_eq!(net.param_bytes(), 44);
    }
}
