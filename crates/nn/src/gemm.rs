//! Register-blocked GEMM kernels behind [`Matrix`](crate::tensor::Matrix)'s
//! `matmul_*` methods.
//!
//! The three matmul flavours the models need (`nt` for forward passes, `tn`
//! for weight gradients, `nn` for input gradients) are implemented here as
//! blocked kernels over flat row-major slices:
//!
//! * **`matmul_nt`** — the hot path. The right operand is packed once into
//!   k-major panels of [`NR`] columns, then an [`MR`]`×`[`NR`] micro-kernel
//!   walks `k` keeping all `MR × NR` partial sums in registers. Everything
//!   is safe indexed slice code shaped so LLVM autovectorizes the inner
//!   `NR`-wide multiply-adds; with `MR = 4`, `NR = 16` the accumulator
//!   tile is eight 256-bit (or four 512-bit) registers under the
//!   `target-cpu=native` build the workspace pins in `.cargo/config.toml`.
//!   Shapes too small to amortize packing fall back to the row-by-row
//!   [`dot`] path.
//! * **`matmul_tn` / `matmul_nn`** — rank-update shaped; they fuse four
//!   coefficient rows per output pass so the output row is traversed once
//!   per four updates instead of once per update.
//!
//! # Reduction order and determinism
//!
//! Training weights must be bit-identical for any `--train-threads` value,
//! so every kernel here makes the per-output-element floating-point
//! reduction order a pure function of the *shapes*, never of the thread
//! count or the blocking cursor:
//!
//! * the `nt` micro-kernel keeps one accumulator per output element and
//!   walks `k` sequentially — any row split (including the parallel
//!   row-chunk split, which assigns whole rows to threads) produces the
//!   same bits;
//! * `tn`/`nn` accumulate row contributions in ascending row order inside
//!   and across their 4-row blocks, matching the order a naive loop uses.
//!
//! The *small-shape* `nt` fallback uses the eight-lane [`dot`] fold, whose
//! rounding differs from the blocked kernel's sequential-`k` order; the
//! dispatch between them depends only on shapes, so it is equally
//! deterministic, and batched-vs-sequential comparisons remain within the
//! workspace-wide 1e-5 relative contract.
//!
//! # NaN/Inf propagation
//!
//! The pre-blocking `tn`/`nn` loops skipped coefficient values that were
//! exactly `0.0`. That is wrong for non-finite operands (`0 × NaN = NaN`,
//! `0 × ∞ = NaN`): a NaN-poisoned activation row multiplied by a zeroed
//! gradient coefficient silently vanished instead of poisoning the weight
//! gradient, at odds with the divergence detection of the training
//! checkpoint guard. The kernels here never skip work based on values, so
//! non-finite inputs propagate faithfully (covered by regression tests).
//!
//! The pre-PR scalar implementations are preserved verbatim in
//! [`reference`] for A/B benchmarks and property tests.

use crate::parallel;
use crate::tensor::{axpy, dot};
use std::cell::RefCell;

/// Micro-kernel row count (output rows carried per inner loop).
pub const MR: usize = 4;
/// Micro-kernel column count (packed panel width; one output row's worth
/// of accumulators is `NR` floats).
pub const NR: usize = 16;

/// Minimum rows per thread before the `nt` kernel fans out row chunks.
const PAR_MIN_ROWS: usize = 64;
/// Minimum total multiply-adds before fanning out is worth a thread spawn.
const PAR_MIN_FLOPS: usize = 1 << 20;

thread_local! {
    /// Reused packing buffer for the `nt` kernel (one per thread; workers
    /// inside the parallel path read the master's packed panels, they never
    /// pack themselves).
    static PACK_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Per-thread column-major staging for the current [`MR`]-row block of
    /// the left operand (each worker packs its own rows).
    static APACK_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// `out = a · bᵀ` over flat row-major buffers: `a` is `rows × k`, `b` is
/// `n × k`, `out` is `rows × n`. Dispatches between the blocked kernel and
/// the small-shape fallback purely on shape.
pub fn matmul_nt(a: &[f32], b: &[f32], out: &mut [f32], rows: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), rows * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), rows * n);
    if rows >= MR && n >= NR && k >= 8 {
        matmul_nt_blocked(a, b, out, rows, k, n);
    } else {
        matmul_nt_small(a, b, out, rows, n);
    }
}

/// Row-by-row [`dot`] path for shapes too small to amortize packing.
fn matmul_nt_small(a: &[f32], b: &[f32], out: &mut [f32], rows: usize, n: usize) {
    if rows == 0 || n == 0 {
        return;
    }
    let k = a.len() / rows;
    for r in 0..rows {
        let ar = &a[r * k..(r + 1) * k];
        let orow = &mut out[r * n..(r + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            *o = dot(ar, &b[j * k..(j + 1) * k]);
        }
    }
}

fn matmul_nt_blocked(a: &[f32], b: &[f32], out: &mut [f32], rows: usize, k: usize, n: usize) {
    let npanels = n.div_ceil(NR);
    PACK_BUF.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.clear();
        buf.resize(npanels * k * NR, 0.0);
        for p in 0..npanels {
            let j0 = p * NR;
            let w = (n - j0).min(NR);
            pack_panel(b, k, j0, w, &mut buf[p * k * NR..(p + 1) * k * NR]);
        }
        let packed: &[f32] = &buf;
        let threads = if rows >= 2 * PAR_MIN_ROWS && rows * k * n >= PAR_MIN_FLOPS {
            parallel::train_threads().min(rows / PAR_MIN_ROWS)
        } else {
            1
        };
        parallel::parallel_row_chunks(out, n, rows, threads, MR, |r0, chunk| {
            let a_chunk = &a[r0 * k..r0 * k + (chunk.len() / n) * k];
            nt_rows(a_chunk, k, packed, n, chunk);
        });
    });
}

/// Packs rows `j0..j0+w` of row-major `b` (`? × k`) into a k-major panel:
/// `panel[kk*NR + jj] = b[j0+jj][kk]`, zero-padded to `NR` columns so the
/// micro-kernel never branches on the column tail (padded lanes are
/// computed and discarded).
fn pack_panel(b: &[f32], k: usize, j0: usize, w: usize, panel: &mut [f32]) {
    debug_assert_eq!(panel.len(), k * NR);
    if w < NR {
        panel.fill(0.0);
    }
    for jj in 0..w {
        let brow = &b[(j0 + jj) * k..(j0 + jj + 1) * k];
        for (kk, &v) in brow.iter().enumerate() {
            panel[kk * NR + jj] = v;
        }
    }
}

/// Runs the micro-kernel over every row of one contiguous row chunk.
/// `a_chunk` holds exactly the chunk's rows, so the caller's split offsets
/// never reach indexing code. Each `MR`-row block of `a` is staged
/// column-major (`apack[kk*MR + i] = a[r0+i][kk]`, zero-padded on the row
/// tail) so the micro-kernel's `k` walk is a pure `chunks_exact` zip with
/// no bounds checks; the padded rows compute all-zero tiles that are
/// simply not written back.
fn nt_rows(a_chunk: &[f32], k: usize, packed: &[f32], n: usize, out_chunk: &mut [f32]) {
    let rows = out_chunk.len() / n;
    APACK_BUF.with(|cell| {
        let mut apack = cell.borrow_mut();
        apack.clear();
        apack.resize(k * MR, 0.0);
        let mut r0 = 0;
        while r0 < rows {
            let m = (rows - r0).min(MR);
            if m < MR {
                apack.fill(0.0);
            }
            for i in 0..m {
                let ar = &a_chunk[(r0 + i) * k..(r0 + i + 1) * k];
                for (kk, &v) in ar.iter().enumerate() {
                    apack[kk * MR + i] = v;
                }
            }
            let mut j0 = 0;
            let mut p = 0;
            while j0 < n {
                let w = (n - j0).min(NR);
                let panel = &packed[p * k * NR..(p + 1) * k * NR];
                let acc = micro_tile(&apack, panel);
                for (i, acc_i) in acc.iter().take(m).enumerate() {
                    let off = (r0 + i) * n + j0;
                    out_chunk[off..off + w].copy_from_slice(&acc_i[..w]);
                }
                j0 += NR;
                p += 1;
            }
            r0 += m;
        }
    });
}

/// The `MR × NR` register tile: `MR` output rows advance together down
/// `k`, each keeping `NR` partial sums live. One accumulator per output
/// element walking `k` in order makes the result independent of how rows
/// were grouped into tiles or chunks. Both operands arrive packed
/// (`apack` column-major by `MR`, `panel` column-major by `NR`), so the
/// loop carries no index arithmetic or bounds checks.
#[inline(always)]
fn micro_tile(apack: &[f32], panel: &[f32]) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (av, bv) in apack.chunks_exact(MR).zip(panel.chunks_exact(NR)) {
        for i in 0..MR {
            let aik = av[i];
            for (o, &bj) in acc[i].iter_mut().zip(bv) {
                *o += aik * bj;
            }
        }
    }
    acc
}

/// `out += aᵀ · b` over flat buffers: `a` is `rows × ca`, `b` is
/// `rows × cb`, `out` is `ca × cb` (caller zero-initializes). Four
/// coefficient rows are fused per output pass; per output element the
/// row contributions still land in ascending row order.
pub fn matmul_tn(a: &[f32], b: &[f32], out: &mut [f32], rows: usize, ca: usize, cb: usize) {
    debug_assert_eq!(a.len(), rows * ca);
    debug_assert_eq!(b.len(), rows * cb);
    debug_assert_eq!(out.len(), ca * cb);
    let mut r0 = 0;
    while r0 + 4 <= rows {
        let b0 = &b[r0 * cb..(r0 + 1) * cb];
        let b1 = &b[(r0 + 1) * cb..(r0 + 2) * cb];
        let b2 = &b[(r0 + 2) * cb..(r0 + 3) * cb];
        let b3 = &b[(r0 + 3) * cb..(r0 + 4) * cb];
        for i in 0..ca {
            let (a0, a1, a2, a3) = (
                a[r0 * ca + i],
                a[(r0 + 1) * ca + i],
                a[(r0 + 2) * ca + i],
                a[(r0 + 3) * ca + i],
            );
            let orow = &mut out[i * cb..(i + 1) * cb];
            for ((((o, &x0), &x1), &x2), &x3) in orow.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
                *o += ((a0 * x0 + a1 * x1) + a2 * x2) + a3 * x3;
            }
        }
        r0 += 4;
    }
    for r in r0..rows {
        let brow = &b[r * cb..(r + 1) * cb];
        for i in 0..ca {
            axpy(a[r * ca + i], brow, &mut out[i * cb..(i + 1) * cb]);
        }
    }
}

/// `out = a · b` over flat buffers: `a` is `rows × k`, `b` is `k × n`,
/// `out` is `rows × n` (caller zero-initializes; accumulates). Four inner
/// coefficients are fused per output pass; per output element the inner
/// contributions land in ascending `k` order.
pub fn matmul_nn(a: &[f32], b: &[f32], out: &mut [f32], rows: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), rows * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), rows * n);
    for r in 0..rows {
        let ar = &a[r * k..(r + 1) * k];
        let orow = &mut out[r * n..(r + 1) * n];
        let mut kk = 0;
        while kk + 4 <= k {
            let (a0, a1, a2, a3) = (ar[kk], ar[kk + 1], ar[kk + 2], ar[kk + 3]);
            let b0 = &b[kk * n..(kk + 1) * n];
            let b1 = &b[(kk + 1) * n..(kk + 2) * n];
            let b2 = &b[(kk + 2) * n..(kk + 3) * n];
            let b3 = &b[(kk + 3) * n..(kk + 4) * n];
            for ((((o, &x0), &x1), &x2), &x3) in orow.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
                *o += ((a0 * x0 + a1 * x1) + a2 * x2) + a3 * x3;
            }
            kk += 4;
        }
        for kk in kk..k {
            axpy(ar[kk], &b[kk * n..(kk + 1) * n], orow);
        }
    }
}

/// The pre-blocking scalar matmul paths, kept verbatim (including the
/// `0.0`-coefficient skip bug in `tn`/`nn`) so benches can report measured
/// speedups against the exact shipped baseline and property tests can pin
/// the blocked kernels to an independent implementation.
pub mod reference {
    use crate::tensor::{axpy, dot, Matrix};

    /// Row-by-row `dot` formulation of `a · bᵀ`.
    pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for r in 0..a.rows() {
            let ar = a.row(r);
            let o = out.row_mut(r);
            for (j, o) in o.iter_mut().enumerate() {
                *o = dot(ar, b.row(j));
            }
        }
        out
    }

    /// `aᵀ · b` as a sequence of rank-1 `axpy` updates, skipping zero
    /// coefficients (the historical behavior — note this drops NaN/Inf
    /// contributions from rows paired with a `0.0` coefficient).
    pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.cols(), b.cols());
        for r in 0..a.rows() {
            let ar = a.row(r);
            let br = b.row(r);
            for (i, &ai) in ar.iter().enumerate() {
                // cardest-lint: allow(float-total-order): exact IEEE zero test to skip no-op axpy work (reference kernel, kept verbatim)
                if ai == 0.0 {
                    continue;
                }
                axpy(ai, br, out.row_mut(i));
            }
        }
        out
    }

    /// `a · b` as row-wise `axpy` accumulation, skipping zero coefficients
    /// (same caveat as [`matmul_tn`]).
    pub fn matmul_nn(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for r in 0..a.rows() {
            let ar = a.row(r);
            let o = out.row_mut(r);
            for (kk, &ak) in ar.iter().enumerate() {
                // cardest-lint: allow(float-total-order): exact IEEE zero test to skip no-op axpy work (reference kernel, kept verbatim)
                if ak == 0.0 {
                    continue;
                }
                axpy(ak, b.row(kk), o);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Matrix;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Cheap deterministic fill, including negatives and exact zeros.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let data = (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = ((state >> 33) as i32 % 1000) as f32 / 250.0 - 2.0;
                if v.abs() < 0.05 {
                    0.0
                } else {
                    v
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    fn assert_close(a: &Matrix, b: &Matrix, what: &str) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            let tol = 1e-5 * x.abs().max(1.0);
            assert!((x - y).abs() <= tol, "{what}: {x} vs {y}");
        }
    }

    #[test]
    fn blocked_nt_matches_reference_across_shapes() {
        // Tile-tail adversaries: shapes straddling MR/NR boundaries.
        for &(m, k, n) in &[
            (1, 1, 1),
            (4, 8, 8),
            (5, 9, 9),
            (7, 16, 17),
            (8, 13, 23),
            (17, 33, 12),
            (31, 64, 31),
            (64, 31, 64),
        ] {
            let a = mat(m, k, 1);
            let b = mat(n, k, 2);
            assert_close(
                &a.matmul_nt(&b),
                &reference::matmul_nt(&a, &b),
                &format!("nt {m}x{k}x{n}"),
            );
        }
    }

    #[test]
    fn blocked_tn_nn_match_reference() {
        for &(rows, ca, cb) in &[(1, 1, 1), (3, 5, 7), (16, 8, 24), (33, 17, 9)] {
            let a = mat(rows, ca, 3);
            let b = mat(rows, cb, 4);
            assert_close(
                &a.matmul_tn(&b),
                &reference::matmul_tn(&a, &b),
                &format!("tn {rows}x{ca}x{cb}"),
            );
        }
        for &(rows, k, n) in &[(1, 1, 1), (3, 5, 7), (16, 8, 24), (9, 33, 12)] {
            let a = mat(rows, k, 5);
            let b = mat(k, n, 6);
            assert_close(
                &a.matmul_nn(&b),
                &reference::matmul_nn(&a, &b),
                &format!("nn {rows}x{k}x{n}"),
            );
        }
    }

    #[test]
    fn zero_extent_shapes_are_fine() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(3, 5);
        assert_eq!(a.matmul_nt(&b).rows(), 0);
        let c = Matrix::zeros(4, 0);
        let d = Matrix::zeros(6, 0);
        let o = c.matmul_nt(&d);
        assert_eq!((o.rows(), o.cols()), (4, 6));
        assert!(o.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn blocked_path_is_bit_stable_across_chunk_splits() {
        // The same multiply with different row-chunk splits must agree
        // bit-for-bit: one accumulator per element, k walked in order.
        let a = mat(140, 32, 7);
        let b = mat(24, 32, 8);
        let full = a.matmul_nt(&b);
        let mut split = Matrix::zeros(140, 24);
        // Drive nt_rows directly with a deliberately ragged split.
        let npanels = 24usize.div_ceil(NR);
        let mut packed = vec![0.0f32; npanels * 32 * NR];
        for p in 0..npanels {
            let w = (24 - p * NR).min(NR);
            pack_panel(
                b.as_slice(),
                32,
                p * NR,
                w,
                &mut packed[p * 32 * NR..(p + 1) * 32 * NR],
            );
        }
        let (lo, hi) = split.as_mut_slice().split_at_mut(61 * 24);
        nt_rows(&a.as_slice()[..61 * 32], 32, &packed, 24, lo);
        nt_rows(&a.as_slice()[61 * 32..], 32, &packed, 24, hi);
        assert_eq!(
            full.as_slice(),
            split.as_slice(),
            "chunk split changed bits"
        );
    }

    #[test]
    fn tn_propagates_nan_through_zero_coefficients() {
        // Regression: the historical path skipped `ai == 0.0`, losing the
        // IEEE `0 × NaN = NaN` poisoning that divergence detection relies on.
        let a = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let b = Matrix::from_vec(1, 2, vec![f32::NAN, 3.0]);
        let fixed = a.matmul_tn(&b);
        assert!(fixed.get(0, 0).is_nan(), "0·NaN must be NaN");
        assert_eq!(fixed.get(0, 1), 0.0, "0·3 stays finite");
        assert!(fixed.get(1, 0).is_nan(), "1·NaN must be NaN");
        let old = reference::matmul_tn(&a, &b);
        assert_eq!(old.get(0, 0), 0.0, "reference documents the old bug");
    }

    #[test]
    fn nn_propagates_nan_through_zero_coefficients() {
        let a = Matrix::from_vec(1, 2, vec![0.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![f32::NAN, f32::INFINITY, 1.0, 1.0]);
        let fixed = a.matmul_nn(&b);
        assert!(fixed.get(0, 0).is_nan(), "0·NaN must be NaN");
        assert!(fixed.get(0, 1).is_nan(), "0·∞ must be NaN");
        let old = reference::matmul_nn(&a, &b);
        assert_eq!(old.get(0, 0), 2.0, "reference documents the old bug");
    }

    #[test]
    fn nt_propagates_nan_in_both_operands() {
        let a = Matrix::from_vec(4, 8, vec![1.0; 32]);
        let mut b = mat(8, 8, 9);
        b.set(3, 5, f32::NAN);
        let out = a.matmul_nt(&b);
        for r in 0..4 {
            assert!(out.get(r, 3).is_nan());
            assert!(out.get(r, 2).is_finite());
        }
    }
}
