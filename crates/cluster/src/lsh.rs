//! Locality-sensitive hashing — the other segmentation alternative the
//! paper compared against PCA + k-means (§3.3), kept for the
//! segmentation-choice ablation bench.
//!
//! Signed-random-projection LSH: `b` random hyperplanes hash each point to
//! a `b`-bit signature; points sharing a signature land in one bucket.
//! Small buckets are merged into the nearest populous bucket (by centroid)
//! so the result is a usable segmentation with roughly the requested
//! number of segments.

use rand::rngs::StdRng;
use rand::SeedableRng;
// cardest-lint: allow(nondeterminism): bucket keys are collected and sorted before any order-sensitive iteration
use std::collections::HashMap;

/// Random-hyperplane LSH over flat `n × dim` points.
#[derive(Debug, Clone)]
pub struct LshSegmenter {
    dim: usize,
    /// `b × dim` hyperplane normals.
    planes: Vec<Vec<f32>>,
}

impl LshSegmenter {
    pub fn new(dim: usize, bits: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x15A8);
        let planes = (0..bits)
            .map(|_| {
                (0..dim)
                    .map(|_| cardest_data::synth::gauss(&mut rng))
                    .collect()
            })
            .collect();
        LshSegmenter { dim, planes }
    }

    /// The `b`-bit signature of one point.
    pub fn signature(&self, p: &[f32]) -> u64 {
        debug_assert!(self.planes.len() <= 64, "at most 64 hash bits supported");
        let mut sig = 0u64;
        for (b, plane) in self.planes.iter().enumerate() {
            let dot: f32 = p.iter().zip(plane).map(|(x, y)| x * y).sum();
            if dot >= 0.0 {
                sig |= 1 << b;
            }
        }
        sig
    }

    /// Buckets all points by signature, merges buckets smaller than
    /// `min_bucket` into the nearest large bucket, and returns compact
    /// labels `0..n_segments`.
    pub fn segment(&self, points: &[f32], min_bucket: usize) -> (Vec<usize>, usize) {
        let n = points.len() / self.dim;
        let sigs: Vec<u64> = (0..n)
            .map(|i| self.signature(&points[i * self.dim..(i + 1) * self.dim]))
            .collect();
        // cardest-lint: allow(nondeterminism): bucket keys are collected and sorted before any order-sensitive iteration
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, &s) in sigs.iter().enumerate() {
            buckets.entry(s).or_default().push(i);
        }
        // Partition into large (kept) and small (merged) buckets, with a
        // deterministic ordering of the kept ones.
        let mut kept: Vec<(u64, Vec<usize>)> = Vec::new();
        let mut small: Vec<Vec<usize>> = Vec::new();
        let mut keys: Vec<u64> = buckets.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let Some(members) = buckets.remove(&key) else {
                continue;
            };
            if members.len() >= min_bucket {
                kept.push((key, members));
            } else {
                small.push(members);
            }
        }
        if kept.is_empty() {
            // Degenerate hash: everything in one segment.
            return (vec![0; n], 1);
        }
        // Centroids of kept buckets.
        let centroids: Vec<Vec<f32>> = kept
            .iter()
            .map(|(_, members)| {
                let mut c = vec![0.0f32; self.dim];
                for &i in members {
                    for (cj, &pj) in c.iter_mut().zip(&points[i * self.dim..(i + 1) * self.dim]) {
                        *cj += pj;
                    }
                }
                for cj in &mut c {
                    *cj /= members.len() as f32;
                }
                c
            })
            .collect();
        let mut labels = vec![0usize; n];
        for (l, (_, members)) in kept.iter().enumerate() {
            for &i in members {
                labels[i] = l;
            }
        }
        for members in small {
            for i in members {
                let p = &points[i * self.dim..(i + 1) * self.dim];
                if let Some((nearest, _)) = centroids
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| sq_dist(p, a).total_cmp(&sq_dist(p, b)))
                {
                    labels[i] = nearest;
                }
            }
        }
        (labels, kept.len())
    }
}

#[inline]
fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn identical_points_share_a_signature() {
        let l = LshSegmenter::new(4, 8, 1);
        let p = [0.3f32, -0.5, 0.2, 0.9];
        assert_eq!(l.signature(&p), l.signature(&p));
    }

    #[test]
    fn opposite_points_differ_in_every_bit() {
        let l = LshSegmenter::new(3, 16, 2);
        let p = [1.0f32, 2.0, -0.5];
        let q = [-1.0f32, -2.0, 0.5];
        let (sp, sq) = (l.signature(&p), l.signature(&q));
        // A strict sign flip flips every plane decision (up to dot == 0).
        assert_eq!(sp ^ sq, (1u64 << 16) - 1);
    }

    #[test]
    fn segmentation_is_total_and_compact() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 300;
        let pts: Vec<f32> = (0..n * 4).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let l = LshSegmenter::new(4, 5, 3);
        let (labels, k) = l.segment(&pts, 5);
        assert_eq!(labels.len(), n);
        assert!(k >= 1);
        assert!(labels.iter().all(|&x| x < k));
        // Compactness: every label in 0..k appears.
        for seg in 0..k {
            assert!(labels.contains(&seg), "segment {seg} empty");
        }
    }

    #[test]
    fn nearby_points_usually_collide() {
        let l = LshSegmenter::new(8, 6, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let mut collisions = 0;
        let trials = 200;
        for _ in 0..trials {
            let p: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let q: Vec<f32> = p
                .iter()
                .map(|x| x + rng.gen_range(-0.01f32..0.01))
                .collect();
            if l.signature(&p) == l.signature(&q) {
                collisions += 1;
            }
        }
        assert!(
            collisions > trials / 2,
            "only {collisions}/{trials} near-pairs collided"
        );
    }
}
