//! The end-to-end data-segmentation pipeline of §3.3: PCA to a handful of
//! components, batch k-means on the reduced points, then per-segment
//! metadata in the *original* space — fractional centroids, member lists,
//! and radii (for the triangle-inequality bound of §5.1).
//!
//! The [`Segmentation`] is the substrate every global-local model sits on:
//! it provides `x_C` (the centroid-distance feature of Fig. 5), per-segment
//! membership for label derivation, and nearest-centroid routing for the
//! incremental updates of §5.3.

use crate::kmeans::KMeans;
use crate::pca::Pca;
use cardest_data::metric::Metric;
use cardest_data::vector::{VectorData, VectorView};
use serde::{Deserialize, Serialize};

/// How the raw data is clustered into segments (the paper compares these
/// three and picks PCA + k-means).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentationMethod {
    /// PCA + mini-batch k-means — the paper's choice.
    PcaKMeans,
    /// PCA + DBSCAN with noise absorbed into the nearest cluster.
    PcaDbscan,
    /// PCA + signed-random-projection LSH buckets.
    PcaLsh,
}

/// Configuration for fitting a [`Segmentation`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SegmentationConfig {
    pub n_segments: usize,
    /// PCA target rank (clamped to the data dimension).
    pub pca_rank: usize,
    pub pca_iters: usize,
    pub method: SegmentationMethod,
    pub seed: u64,
}

impl Default for SegmentationConfig {
    fn default() -> Self {
        SegmentationConfig {
            n_segments: 32,
            pca_rank: 8,
            pca_iters: 12,
            method: SegmentationMethod::PcaKMeans,
            seed: 0,
        }
    }
}

/// A total partition of the dataset into segments, with the per-segment
/// metadata the estimators need.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Segmentation {
    metric: Metric,
    pca: Pca,
    /// Per-point segment id.
    assignment: Vec<usize>,
    /// Per-segment member indices.
    members: Vec<Vec<usize>>,
    /// Fractional centroids in the *original* space.
    centroids: Vec<Vec<f32>>,
    /// Max member distance to the centroid, under `metric`.
    radii: Vec<f32>,
}

impl Segmentation {
    /// Fits the segmentation pipeline on a dataset.
    pub fn fit(data: &VectorData, metric: Metric, config: &SegmentationConfig) -> Self {
        assert!(!data.is_empty(), "cannot segment an empty dataset");
        let n = data.len();
        let n_segments = config.n_segments.clamp(1, n);
        let pca = Pca::fit(data, config.pca_rank, config.pca_iters, config.seed);
        let reduced = pca.transform_all(data);
        let rank = pca.rank();

        let assignment: Vec<usize> = match config.method {
            SegmentationMethod::PcaKMeans => {
                let km = KMeans::fit_minibatch(&reduced, rank, n_segments, 256, 40, config.seed);
                km.assign_all(&reduced)
            }
            SegmentationMethod::PcaDbscan => {
                // Pick eps from a distance sample so the requested segment
                // count is roughly achievable, then absorb noise.
                let eps = estimate_eps(&reduced, rank, n_segments);
                let (mut labels, _) = crate::dbscan::dbscan(&reduced, rank, eps, 4);
                crate::dbscan::absorb_noise(&reduced, rank, &mut labels);
                labels
            }
            SegmentationMethod::PcaLsh => {
                let bits = (n_segments.max(2) as f32).log2().ceil() as usize + 1;
                let lsh = crate::lsh::LshSegmenter::new(rank, bits.min(16), config.seed);
                let min_bucket = (n / (4 * n_segments.max(1))).max(2);
                lsh.segment(&reduced, min_bucket).0
            }
        };
        Self::from_assignment(data, metric, pca, assignment)
    }

    /// Builds segment metadata from an explicit assignment (also used after
    /// re-labelling in the DBSCAN/LSH paths).
    fn from_assignment(
        data: &VectorData,
        metric: Metric,
        pca: Pca,
        assignment: Vec<usize>,
    ) -> Self {
        let n_segments = assignment.iter().copied().max().map_or(1, |m| m + 1);
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_segments];
        for (i, &s) in assignment.iter().enumerate() {
            members[s].push(i);
        }
        let centroids: Vec<Vec<f32>> = members
            .iter()
            .map(|m| {
                if m.is_empty() {
                    vec![0.0; data.dim()]
                } else {
                    data.centroid(m)
                }
            })
            .collect();
        let radii: Vec<f32> = members
            .iter()
            .zip(&centroids)
            .map(|(m, c)| {
                m.iter()
                    .map(|&i| metric.distance_to_centroid(data.view(i), c))
                    .fold(0.0f32, f32::max)
            })
            .collect();
        Segmentation {
            metric,
            pca,
            assignment,
            members,
            centroids,
            radii,
        }
    }

    pub fn n_segments(&self) -> usize {
        self.members.len()
    }

    pub fn metric(&self) -> Metric {
        self.metric
    }

    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    pub fn members(&self, seg: usize) -> &[usize] {
        &self.members[seg]
    }

    pub fn centroid(&self, seg: usize) -> &[f32] {
        &self.centroids[seg]
    }

    pub fn radius(&self, seg: usize) -> f32 {
        self.radii[seg]
    }

    /// The centroid-distance feature `x_C` of Fig. 5: distances from a
    /// query to every segment centroid, under the dataset metric — the
    /// batched kernel expands a binary query once, not per centroid.
    pub fn centroid_distances(&self, q: VectorView<'_>) -> Vec<f32> {
        self.metric.distance_to_centroids(q, &self.centroids)
    }

    /// [`Segmentation::centroid_distances`] into a caller-owned buffer of
    /// length [`Segmentation::n_segments`] (the feature-cache hot path).
    pub fn centroid_distances_into(&self, q: VectorView<'_>, out: &mut [f32]) {
        self.metric
            .distance_to_centroids_into(q, &self.centroids, out);
    }

    /// The segment whose centroid is nearest to `v` — the routing rule for
    /// inserted points (§5.3). Evaluates each centroid distance once (the
    /// previous comparator-based argmin evaluated two per comparison) and
    /// keeps the first minimum on ties.
    pub fn nearest_segment(&self, v: VectorView<'_>) -> usize {
        let dists = self.metric.distance_to_centroids(v, &self.centroids);
        let mut best = (0usize, f32::INFINITY);
        for (s, &d) in dists.iter().enumerate() {
            if d < best.1 {
                best = (s, d);
            }
        }
        best.0
    }

    /// Records a newly inserted point (already appended to the dataset at
    /// index `idx`) into its nearest segment, growing that segment's radius
    /// if needed. Returns the segment id.
    pub fn insert_point(&mut self, idx: usize, v: VectorView<'_>) -> usize {
        let seg = self.nearest_segment(v);
        debug_assert_eq!(
            idx,
            self.assignment.len(),
            "points must be appended in order"
        );
        self.assignment.push(seg);
        self.members[seg].push(idx);
        let d = self.metric.distance_to_centroid(v, &self.centroids[seg]);
        if d > self.radii[seg] {
            self.radii[seg] = d;
        }
        seg
    }

    /// Removes a point (by dataset index) from its segment. The dataset
    /// itself keeps the row (tombstone semantics); cardinality labels must
    /// be recomputed by the caller.
    pub fn remove_point(&mut self, idx: usize) -> usize {
        let seg = self.assignment[idx];
        if let Some(pos) = self.members[seg].iter().position(|&i| i == idx) {
            self.members[seg].swap_remove(pos);
        }
        seg
    }

    /// Lower bound on the distance from `q` to any member of `seg`, via the
    /// triangle inequality on the centroid distance and segment radius
    /// (§5.1 uses this bound to motivate the centroid feature). Only valid
    /// for true metrics (L1/L2/Angular/Hamming); returns 0 otherwise.
    pub fn distance_lower_bound(&self, q: VectorView<'_>, seg: usize) -> f32 {
        if matches!(self.metric, Metric::Jaccard) || !self.metric.is_true_metric() {
            // Ruzicka-generalized Jaccard against fractional centroids is
            // not guaranteed metric here, and cosine has no triangle
            // inequality at all; fall back to the trivial bound.
            return 0.0;
        }
        let dc = self.metric.distance_to_centroid(q, &self.centroids[seg]);
        (dc - self.radii[seg]).max(0.0)
    }

    /// Mean within-segment distance of sampled pairs — the cohesion score
    /// used by the segmentation-method ablation (lower is better).
    pub fn cohesion(&self, data: &VectorData, pairs_per_segment: usize, seed: u64) -> f32 {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut total = 0.0f64;
        let mut count = 0usize;
        for m in &self.members {
            if m.len() < 2 {
                continue;
            }
            for _ in 0..pairs_per_segment {
                let a = m[rng.gen_range(0..m.len())];
                let b = m[rng.gen_range(0..m.len())];
                if a == b {
                    continue;
                }
                total += self.metric.distance(data.view(a), data.view(b)) as f64;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            (total / count as f64) as f32
        }
    }
}

/// Picks a DBSCAN `eps` as a low quantile of sampled pairwise distances,
/// scaled so that roughly `n_segments` dense regions can separate.
fn estimate_eps(points: &[f32], dim: usize, n_segments: usize) -> f32 {
    let n = points.len() / dim;
    if n < 2 {
        return 1.0;
    }
    let mut dists: Vec<f32> = Vec::new();
    let step = (n / 512).max(1);
    let mut i = 0;
    while i + step < n && dists.len() < 2048 {
        let a = &points[i * dim..(i + 1) * dim];
        let b = &points[(i + step) * dim..(i + step + 1) * dim];
        dists.push(cardest_data::kernels::sq_l2(a, b).sqrt());
        i += 1;
    }
    dists.sort_by(|a, b| a.total_cmp(b));
    let q = (dists.len() / n_segments.max(2)).min(dists.len().saturating_sub(1));
    dists.get(q).copied().unwrap_or(1.0).max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::paper::{DatasetSpec, PaperDataset};

    fn small_spec() -> DatasetSpec {
        DatasetSpec {
            n_data: 800,
            ..PaperDataset::ImageNet.spec()
        }
    }

    fn fit_small(method: SegmentationMethod) -> (VectorData, Segmentation) {
        let spec = small_spec();
        let data = spec.generate(11);
        let config = SegmentationConfig {
            n_segments: 8,
            pca_rank: 6,
            pca_iters: 8,
            method,
            seed: 11,
        };
        let seg = Segmentation::fit(&data, spec.metric, &config);
        (data, seg)
    }

    #[test]
    fn kmeans_segmentation_is_a_total_partition() {
        let (data, seg) = fit_small(SegmentationMethod::PcaKMeans);
        assert_eq!(seg.assignment().len(), data.len());
        let total: usize = (0..seg.n_segments()).map(|s| seg.members(s).len()).sum();
        assert_eq!(total, data.len());
        // Members agree with the assignment.
        for s in 0..seg.n_segments() {
            for &i in seg.members(s) {
                assert_eq!(seg.assignment()[i], s);
            }
        }
    }

    #[test]
    fn radii_cover_members() {
        let (data, seg) = fit_small(SegmentationMethod::PcaKMeans);
        for s in 0..seg.n_segments() {
            for &i in seg.members(s) {
                let d = seg
                    .metric()
                    .distance_to_centroid(data.view(i), seg.centroid(s));
                assert!(d <= seg.radius(s) + 1e-6);
            }
        }
    }

    #[test]
    fn triangle_lower_bound_is_valid() {
        let (data, seg) = fit_small(SegmentationMethod::PcaKMeans);
        // For sampled queries and segments, no member may be closer than
        // the bound.
        for q in (0..data.len()).step_by(97) {
            for s in 0..seg.n_segments() {
                let bound = seg.distance_lower_bound(data.view(q), s);
                for &i in seg.members(s).iter().take(20) {
                    let d = seg.metric().distance(data.view(q), data.view(i));
                    assert!(
                        d >= bound - 1e-4,
                        "member {i} of seg {s} at {d} violates bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn centroid_distances_have_one_entry_per_segment() {
        let (data, seg) = fit_small(SegmentationMethod::PcaKMeans);
        let xc = seg.centroid_distances(data.view(0));
        assert_eq!(xc.len(), seg.n_segments());
        assert!(xc.iter().all(|d| d.is_finite() && *d >= 0.0));
    }

    #[test]
    fn insert_routes_to_nearest_and_grows_radius() {
        let (data, mut seg) = fit_small(SegmentationMethod::PcaKMeans);
        let v = data.view(0);
        let expected = seg.nearest_segment(v);
        let n = data.len();
        let got = seg.insert_point(n, v);
        assert_eq!(got, expected);
        assert!(seg.members(got).contains(&n));
        assert_eq!(seg.assignment().len(), n + 1);
    }

    #[test]
    fn remove_point_shrinks_membership() {
        let (_, mut seg) = fit_small(SegmentationMethod::PcaKMeans);
        let seg0 = seg.assignment()[0];
        let before = seg.members(seg0).len();
        seg.remove_point(0);
        assert_eq!(seg.members(seg0).len(), before - 1);
    }

    #[test]
    fn dbscan_and_lsh_methods_also_produce_total_partitions() {
        for method in [SegmentationMethod::PcaDbscan, SegmentationMethod::PcaLsh] {
            let (data, seg) = fit_small(method);
            let total: usize = (0..seg.n_segments()).map(|s| seg.members(s).len()).sum();
            assert_eq!(total, data.len(), "{method:?}");
        }
    }

    #[test]
    fn kmeans_cohesion_beats_random_assignment() {
        let spec = small_spec();
        let data = spec.generate(13);
        let config = SegmentationConfig {
            n_segments: 8,
            ..Default::default()
        };
        let seg = Segmentation::fit(&data, spec.metric, &config);
        // Random segmentation baseline with the same segment count.
        let pca = Pca::fit(&data, 4, 4, 13);
        let random_assign: Vec<usize> = (0..data.len()).map(|i| i % 8).collect();
        let rand_seg = Segmentation::from_assignment(&data, spec.metric, pca, random_assign);
        let c_fit = seg.cohesion(&data, 50, 1);
        let c_rand = rand_seg.cohesion(&data, 50, 1);
        assert!(
            c_fit < c_rand,
            "k-means cohesion {c_fit} should beat random {c_rand}"
        );
    }

    #[test]
    fn single_segment_config_works() {
        let spec = small_spec();
        let data = spec.generate(14);
        let config = SegmentationConfig {
            n_segments: 1,
            ..Default::default()
        };
        let seg = Segmentation::fit(&data, spec.metric, &config);
        assert_eq!(seg.n_segments(), 1);
        assert_eq!(seg.members(0).len(), data.len());
    }
}
