// Library (non-test) code must not panic on malformed input: surface
// typed errors instead. Tests may unwrap freely.
// The workspace is 100% safe Rust; `cardest-lint` (unsafe-block rule) and
// this forbid cross-check each other.
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # cardest-cluster
//!
//! Data segmentation for the `cardest` reproduction (§3.3 of the paper):
//! *"We use a simple and efficient segmentation method which uses Principal
//! Component Analysis (PCA) to reduce the dimensionality first and then
//! divide data by using batch K-means."*
//!
//! * [`pca`] — PCA via subspace iteration with implicit covariance
//!   products (never materializes the `d × d` covariance),
//! * [`kmeans`] — k-means++ seeding, Lloyd iterations and the mini-batch
//!   variant the paper calls "batch K-means",
//! * [`dbscan`] / [`lsh`] — the alternatives the paper compared against
//!   ("We have compared LSH, DBSCAN, and K-means; K-means with PCA shows
//!   the best on both accuracy and efficiency") — kept for the ablation
//!   bench,
//! * [`segmentation`] — the end-to-end pipeline producing the
//!   [`segmentation::Segmentation`] every global-local model is built on:
//!   per-segment membership, fractional full-space centroids, radii, and
//!   nearest-centroid routing for incremental updates (§5.3).

pub mod dbscan;
pub mod kmeans;
pub mod lsh;
pub mod pca;
pub mod segmentation;

pub use kmeans::KMeans;
pub use pca::Pca;
pub use segmentation::Segmentation;
