//! Principal Component Analysis via subspace (orthogonal) iteration.
//!
//! The segmentation pipeline reduces high-dimensional data to a handful of
//! components before clustering (§3.3). At the workspace's scales the
//! `d × d` covariance matrix would dominate the cost, so the iteration uses
//! implicit products: each step computes `Xcᵀ (Xc Q)` by streaming over the
//! data rows (binary rows are expanded into a reusable buffer), never
//! materializing the covariance.

use cardest_data::kernels::dot;
use cardest_data::vector::{VectorData, VectorView};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A fitted PCA transform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pca {
    mean: Vec<f32>,
    /// `r × d` orthonormal component rows.
    components: Vec<Vec<f32>>,
}

impl Pca {
    /// Fits `r` principal components with `iters` subspace iterations.
    ///
    /// `r` is clamped to the data dimension. Fitting is deterministic in
    /// `seed`.
    pub fn fit(data: &VectorData, r: usize, iters: usize, seed: u64) -> Self {
        let n = data.len();
        let d = data.dim();
        let r = r.min(d).max(1);
        assert!(n > 0, "cannot fit PCA on an empty dataset");

        // Mean vector.
        let all: Vec<usize> = (0..n).collect();
        let mean = data.centroid(&all);

        // Random orthonormal start.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9CA0_57A7);
        let mut q: Vec<Vec<f32>> = (0..r)
            .map(|_| {
                (0..d)
                    .map(|_| cardest_data::synth::gauss(&mut rng))
                    .collect()
            })
            .collect();
        orthonormalize(&mut q);

        let mut buf: Vec<f32> = Vec::with_capacity(d);
        for _ in 0..iters.max(1) {
            // z_k = Σ_rows (xc · q_k) · xc, accumulated in f64 for stability.
            let mut z: Vec<Vec<f64>> = vec![vec![0.0; d]; r];
            let mut proj = vec![0.0f32; r];
            for i in 0..n {
                data.view(i).write_dense(&mut buf);
                for (x, m) in buf.iter_mut().zip(&mean) {
                    *x -= m;
                }
                for (p, qk) in proj.iter_mut().zip(&q) {
                    *p = dot(&buf, qk);
                }
                for (zk, &p) in z.iter_mut().zip(&proj) {
                    // cardest-lint: allow(float-total-order): exact zero skip of no-op rank-1 updates, not a tolerance check
                    if p != 0.0 {
                        for (zj, &xj) in zk.iter_mut().zip(&buf) {
                            *zj += (p * xj) as f64;
                        }
                    }
                }
            }
            for (qk, zk) in q.iter_mut().zip(&z) {
                for (qj, &zj) in qk.iter_mut().zip(zk) {
                    *qj = (zj / n as f64) as f32;
                }
            }
            orthonormalize(&mut q);
        }
        Pca {
            mean,
            components: q,
        }
    }

    /// Number of components.
    pub fn rank(&self) -> usize {
        self.components.len()
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.mean.len()
    }

    /// Projects one vector into the component space.
    pub fn transform_view(&self, v: VectorView<'_>, buf: &mut Vec<f32>) -> Vec<f32> {
        v.write_dense(buf);
        for (x, m) in buf.iter_mut().zip(&self.mean) {
            *x -= m;
        }
        self.components.iter().map(|c| dot(buf, c)).collect()
    }

    /// Projects the whole collection, returning a flat `n × r` buffer.
    pub fn transform_all(&self, data: &VectorData) -> Vec<f32> {
        let mut out = Vec::with_capacity(data.len() * self.rank());
        let mut buf = Vec::with_capacity(self.input_dim());
        for i in 0..data.len() {
            out.extend(self.transform_view(data.view(i), &mut buf));
        }
        out
    }

    /// Read-only access to the component rows (tests check orthonormality).
    pub fn components(&self) -> &[Vec<f32>] {
        &self.components
    }
}

/// Modified Gram–Schmidt in place; a vector that collapses to ~zero is
/// replaced by a unit basis vector to keep the subspace full-rank.
fn orthonormalize(q: &mut [Vec<f32>]) {
    let d = q.first().map_or(0, Vec::len);
    for k in 0..q.len() {
        for j in 0..k {
            let (head, tail) = q.split_at_mut(k);
            let proj = dot(&tail[0], &head[j]);
            for (t, h) in tail[0].iter_mut().zip(&head[j]) {
                *t -= proj * h;
            }
        }
        let norm = q[k].iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for x in &mut q[k] {
                *x /= norm;
            }
        } else {
            for (i, x) in q[k].iter_mut().enumerate() {
                *x = if i == k % d { 1.0 } else { 0.0 };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::vector::DenseData;
    use rand::Rng;

    /// Data with variance overwhelmingly along one axis: PCA's first
    /// component must align with that axis.
    fn anisotropic_data(seed: u64, n: usize, d: usize) -> VectorData {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values = Vec::with_capacity(n * d);
        for _ in 0..n {
            let main: f32 = rng.gen_range(-10.0..10.0);
            for j in 0..d {
                if j == 2 {
                    values.push(main);
                } else {
                    values.push(rng.gen_range(-0.1..0.1));
                }
            }
        }
        VectorData::Dense(DenseData::from_flat(d, values))
    }

    #[test]
    fn first_component_finds_dominant_axis() {
        let data = anisotropic_data(1, 500, 8);
        let pca = Pca::fit(&data, 2, 20, 1);
        let c0 = &pca.components()[0];
        // |c0[2]| should dominate all other coordinates.
        assert!(
            c0[2].abs() > 0.99,
            "first component {c0:?} not aligned with axis 2"
        );
    }

    #[test]
    fn components_are_orthonormal() {
        let data = anisotropic_data(2, 300, 10);
        let pca = Pca::fit(&data, 4, 20, 2);
        let cs = pca.components();
        for i in 0..cs.len() {
            for j in 0..cs.len() {
                let d = dot(&cs[i], &cs[j]);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-3, "<c{i},c{j}> = {d}");
            }
        }
    }

    #[test]
    fn transform_centers_the_data() {
        let data = anisotropic_data(3, 400, 6);
        let pca = Pca::fit(&data, 3, 15, 3);
        let flat = pca.transform_all(&data);
        let r = pca.rank();
        for k in 0..r {
            let mean: f32 =
                (0..data.len()).map(|i| flat[i * r + k]).sum::<f32>() / data.len() as f32;
            assert!(mean.abs() < 0.05, "component {k} mean {mean} not ~0");
        }
    }

    #[test]
    fn rank_is_clamped_to_dimension() {
        let data = anisotropic_data(4, 50, 4);
        let pca = Pca::fit(&data, 16, 5, 4);
        assert_eq!(pca.rank(), 4);
    }

    #[test]
    fn works_on_binary_data() {
        use cardest_data::vector::BinaryData;
        let mut b = BinaryData::new(32);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let on: Vec<usize> = (0..32).filter(|_| rng.gen_bool(0.3)).collect();
            b.push_indices(&on);
        }
        let data = VectorData::Binary(b);
        let pca = Pca::fit(&data, 4, 10, 5);
        assert_eq!(pca.rank(), 4);
        let flat = pca.transform_all(&data);
        assert_eq!(flat.len(), 200 * 4);
        assert!(flat.iter().all(|x| x.is_finite()));
    }
}
