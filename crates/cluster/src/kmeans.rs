//! K-means over PCA-reduced points: k-means++ seeding plus either full
//! Lloyd iterations or the mini-batch variant (Sculley) — the "batch
//! K-means" of §3.3, which the paper chose for efficiency on large data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A fitted k-means model over `r`-dimensional points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeans {
    k: usize,
    dim: usize,
    /// `k × dim` centroid coordinates, flat.
    centroids: Vec<f32>,
}

impl KMeans {
    /// Fits with full Lloyd iterations.
    pub fn fit_lloyd(points: &[f32], dim: usize, k: usize, iters: usize, seed: u64) -> Self {
        let mut model = Self::seed_plus_plus(points, dim, k, seed);
        let n = points.len() / dim;
        let mut assign = vec![0usize; n];
        for _ in 0..iters {
            let mut changed = false;
            for (i, a) in assign.iter_mut().enumerate() {
                let best = model.nearest(&points[i * dim..(i + 1) * dim]).0;
                if best != *a {
                    *a = best;
                    changed = true;
                }
            }
            model.recompute_centroids(points, &assign, seed);
            if !changed {
                break;
            }
        }
        model
    }

    /// Fits with mini-batch updates: each step samples `batch` points and
    /// moves their nearest centroids with per-centroid decaying rates.
    pub fn fit_minibatch(
        points: &[f32],
        dim: usize,
        k: usize,
        batch: usize,
        steps: usize,
        seed: u64,
    ) -> Self {
        let n = points.len() / dim;
        let mut model = Self::seed_plus_plus(points, dim, k, seed);
        let mut counts = vec![1usize; k];
        let mut rng = StdRng::seed_from_u64(seed ^ 0x000B_A7C4);
        for _ in 0..steps {
            for _ in 0..batch.min(n) {
                let i = rng.gen_range(0..n);
                let p = &points[i * dim..(i + 1) * dim];
                let (c, _) = model.nearest(p);
                counts[c] += 1;
                let lr = 1.0 / counts[c] as f32;
                let cent = &mut model.centroids[c * dim..(c + 1) * dim];
                for (cj, &pj) in cent.iter_mut().zip(p) {
                    *cj += lr * (pj - *cj);
                }
            }
        }
        model
    }

    /// k-means++ seeding: first centroid uniform, the rest sampled
    /// proportionally to the squared distance to the nearest chosen one.
    fn seed_plus_plus(points: &[f32], dim: usize, k: usize, seed: u64) -> Self {
        assert!(
            dim > 0 && !points.is_empty(),
            "k-means needs non-empty input"
        );
        let n = points.len() / dim;
        let k = k.clamp(1, n);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let mut centroids = Vec::with_capacity(k * dim);
        let first = rng.gen_range(0..n);
        centroids.extend_from_slice(&points[first * dim..(first + 1) * dim]);
        let mut d2: Vec<f32> = (0..n)
            .map(|i| sq_dist(&points[i * dim..(i + 1) * dim], &centroids[0..dim]))
            .collect();
        while centroids.len() < k * dim {
            let total: f32 = d2.iter().sum();
            let pick = if total <= 0.0 {
                rng.gen_range(0..n)
            } else {
                let mut u = rng.gen_range(0.0..total);
                let mut chosen = n - 1;
                for (i, &w) in d2.iter().enumerate() {
                    if u < w {
                        chosen = i;
                        break;
                    }
                    u -= w;
                }
                chosen
            };
            let new = &points[pick * dim..(pick + 1) * dim];
            centroids.extend_from_slice(new);
            for (i, d) in d2.iter_mut().enumerate() {
                *d = d.min(sq_dist(&points[i * dim..(i + 1) * dim], new));
            }
        }
        KMeans { k, dim, centroids }
    }

    fn recompute_centroids(&mut self, points: &[f32], assign: &[usize], seed: u64) {
        let n = assign.len();
        let mut sums = vec![0.0f64; self.k * self.dim];
        let mut counts = vec![0usize; self.k];
        for (i, &a) in assign.iter().enumerate() {
            counts[a] += 1;
            for j in 0..self.dim {
                sums[a * self.dim + j] += points[i * self.dim + j] as f64;
            }
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE3B0);
        for c in 0..self.k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at a random point.
                let i = rng.gen_range(0..n);
                self.centroids[c * self.dim..(c + 1) * self.dim]
                    .copy_from_slice(&points[i * self.dim..(i + 1) * self.dim]);
            } else {
                for j in 0..self.dim {
                    self.centroids[c * self.dim + j] =
                        (sums[c * self.dim + j] / counts[c] as f64) as f32;
                }
            }
        }
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn centroid(&self, c: usize) -> &[f32] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    /// Index and squared distance of the nearest centroid.
    pub fn nearest(&self, p: &[f32]) -> (usize, f32) {
        debug_assert_eq!(p.len(), self.dim);
        let mut best = (0usize, f32::INFINITY);
        for c in 0..self.k {
            let d = sq_dist(p, self.centroid(c));
            if d < best.1 {
                best = (c, d);
            }
        }
        best
    }

    /// Assigns every point in a flat buffer.
    pub fn assign_all(&self, points: &[f32]) -> Vec<usize> {
        points.chunks(self.dim).map(|p| self.nearest(p).0).collect()
    }

    /// Mean squared distance of points to their assigned centroid (inertia
    /// per point) — used to compare clustering quality across methods.
    pub fn inertia(&self, points: &[f32]) -> f32 {
        let n = points.len() / self.dim;
        if n == 0 {
            return 0.0;
        }
        points
            .chunks(self.dim)
            .map(|p| self.nearest(p).1)
            .sum::<f32>()
            / n as f32
    }
}

/// Squared L2 via the shared eight-lane kernel (assignments scan every
/// centroid for every point, so this is the clustering hot loop).
#[inline]
fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    cardest_data::kernels::sq_l2(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-d blobs.
    fn blobs(seed: u64, per: usize) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [(0.0f32, 0.0f32), (10.0, 0.0), (0.0, 10.0)];
        let mut pts = Vec::with_capacity(per * 3 * 2);
        for &(cx, cy) in &centers {
            for _ in 0..per {
                pts.push(cx + rng.gen_range(-0.5..0.5));
                pts.push(cy + rng.gen_range(-0.5..0.5));
            }
        }
        pts
    }

    #[test]
    fn lloyd_separates_blobs() {
        let pts = blobs(1, 50);
        let km = KMeans::fit_lloyd(&pts, 2, 3, 30, 1);
        let assign = km.assign_all(&pts);
        // All points of one blob share a label, labels differ across blobs.
        for blob in 0..3 {
            let first = assign[blob * 50];
            assert!(assign[blob * 50..(blob + 1) * 50]
                .iter()
                .all(|&a| a == first));
        }
        assert_ne!(assign[0], assign[50]);
        assert_ne!(assign[50], assign[100]);
        assert!(km.inertia(&pts) < 1.0);
    }

    #[test]
    fn minibatch_reaches_similar_inertia_to_lloyd() {
        let pts = blobs(2, 80);
        let lloyd = KMeans::fit_lloyd(&pts, 2, 3, 30, 2);
        let mb = KMeans::fit_minibatch(&pts, 2, 3, 32, 60, 2);
        assert!(
            mb.inertia(&pts) < lloyd.inertia(&pts) * 4.0 + 0.5,
            "mini-batch inertia {} vs lloyd {}",
            mb.inertia(&pts),
            lloyd.inertia(&pts)
        );
    }

    #[test]
    fn k_is_clamped_to_point_count() {
        let pts = vec![0.0f32, 0.0, 1.0, 1.0];
        let km = KMeans::fit_lloyd(&pts, 2, 10, 5, 3);
        assert_eq!(km.k(), 2);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let pts = vec![0.0f32, 2.0, 4.0, 6.0]; // 1-d points 0,2,4,6
        let km = KMeans::fit_lloyd(&pts, 1, 1, 10, 4);
        assert!((km.centroid(0)[0] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = blobs(5, 30);
        let a = KMeans::fit_minibatch(&pts, 2, 3, 16, 30, 9);
        let b = KMeans::fit_minibatch(&pts, 2, 3, 16, 30, 9);
        assert_eq!(a.centroids, b.centroids);
    }
}
