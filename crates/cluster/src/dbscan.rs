//! DBSCAN over PCA-reduced points — one of the segmentation alternatives
//! the paper evaluated before settling on PCA + k-means (§3.3). Kept for
//! the segmentation-choice ablation bench.
//!
//! Classic density-based clustering: a *core* point has at least
//! `min_pts` neighbours within `eps`; clusters are the connected
//! components of core points plus their border neighbours. Noise points
//! are reported with the label [`NOISE`] and folded into the nearest
//! cluster by the segmentation adapter (every data point must belong to
//! exactly one segment for the global-local framework).

/// Cluster label assigned to noise points.
pub const NOISE: usize = usize::MAX;

/// Runs DBSCAN on a flat `n × dim` buffer, returning per-point labels
/// (`0..n_clusters`, or [`NOISE`]) and the number of clusters found.
///
/// Neighbour search is a straightforward O(n²) scan — the inputs here are
/// PCA-reduced to a handful of dimensions and at most tens of thousands of
/// points, where the scan is fast and index-free.
pub fn dbscan(points: &[f32], dim: usize, eps: f32, min_pts: usize) -> (Vec<usize>, usize) {
    assert!(dim > 0, "dimension must be positive");
    let n = points.len() / dim;
    let eps2 = eps * eps;
    let point = |i: usize| &points[i * dim..(i + 1) * dim];

    // Precompute neighbour lists (O(n²) distance evaluations).
    let mut neighbours: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if sq_dist(point(i), point(j)) <= eps2 {
                neighbours[i].push(j);
                neighbours[j].push(i);
            }
        }
    }
    let is_core: Vec<bool> = neighbours
        .iter()
        .map(|nb| nb.len() + 1 >= min_pts)
        .collect();

    let mut label = vec![NOISE; n];
    let mut next_cluster = 0usize;
    let mut stack: Vec<usize> = Vec::new();
    for i in 0..n {
        if label[i] != NOISE || !is_core[i] {
            continue;
        }
        // Grow a new cluster from this unvisited core point.
        let c = next_cluster;
        next_cluster += 1;
        label[i] = c;
        stack.push(i);
        while let Some(p) = stack.pop() {
            for &q in &neighbours[p] {
                if label[q] == NOISE {
                    label[q] = c;
                    if is_core[q] {
                        stack.push(q);
                    }
                }
            }
        }
    }
    (label, next_cluster)
}

/// Replaces noise labels by the label of the nearest non-noise point so
/// that the result forms a total partition (required by the global-local
/// framework). If everything is noise, all points collapse into cluster 0.
pub fn absorb_noise(points: &[f32], dim: usize, labels: &mut [usize]) -> usize {
    let n = labels.len();
    let point = |i: usize| &points[i * dim..(i + 1) * dim];
    let clustered: Vec<usize> = (0..n).filter(|&i| labels[i] != NOISE).collect();
    if clustered.is_empty() {
        for l in labels.iter_mut() {
            *l = 0;
        }
        return 1;
    }
    for i in 0..n {
        if labels[i] == NOISE {
            let Some(nearest) = clustered.iter().copied().min_by(|&a, &b| {
                sq_dist(point(i), point(a)).total_cmp(&sq_dist(point(i), point(b)))
            }) else {
                continue; // unreachable: the no-cluster case returned above
            };
            labels[i] = labels[nearest];
        }
    }
    labels.iter().copied().max().map_or(1, |m| m + 1)
}

#[inline]
fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_dense_blobs_and_flags_noise() {
        // Blob A around 0, blob B around 10, one outlier at 100.
        let mut pts: Vec<f32> = Vec::new();
        for i in 0..10 {
            pts.push(i as f32 * 0.1);
        }
        for i in 0..10 {
            pts.push(10.0 + i as f32 * 0.1);
        }
        pts.push(100.0);
        let (labels, k) = dbscan(&pts, 1, 0.3, 3);
        assert_eq!(k, 2);
        assert!(labels[..10].iter().all(|&l| l == labels[0]));
        assert!(labels[10..20].iter().all(|&l| l == labels[10]));
        assert_ne!(labels[0], labels[10]);
        assert_eq!(labels[20], NOISE);
    }

    #[test]
    fn absorb_noise_yields_total_partition() {
        let mut pts: Vec<f32> = (0..10).map(|i| i as f32 * 0.1).collect();
        pts.push(100.0);
        let (mut labels, _) = dbscan(&pts, 1, 0.3, 3);
        let k = absorb_noise(&pts, 1, &mut labels);
        assert_eq!(k, 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn all_noise_collapses_to_single_cluster() {
        // Far-apart points, none core.
        let pts = vec![0.0f32, 100.0, 200.0, 300.0];
        let (mut labels, k) = dbscan(&pts, 1, 0.5, 3);
        assert_eq!(k, 0);
        let k2 = absorb_noise(&pts, 1, &mut labels);
        assert_eq!(k2, 1);
    }

    #[test]
    fn min_pts_one_makes_every_point_core() {
        let pts = vec![0.0f32, 10.0];
        let (labels, k) = dbscan(&pts, 1, 0.5, 1);
        assert_eq!(k, 2);
        assert_ne!(labels[0], labels[1]);
    }
}
