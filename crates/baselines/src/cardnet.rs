//! A substitute for **CardNet** — the SIGMOD 2020 deep-learning estimator
//! [53] the paper compares against (Table 2 row 6). The authors' code is
//! unavailable here, so this reimplements the two properties the paper
//! attributes to it:
//!
//! 1. *VAE query embedding* — an encoder maps `x_q` to a Gaussian latent
//!    `(μ, log σ²)` with a KL regularizer; training samples
//!    `z = μ + σ·ε`, inference uses `z = μ`.
//! 2. *Per-threshold monotone decomposition* — the decoder emits one
//!    non-negative increment per threshold bucket; the estimate at τ is
//!    the (fractionally interpolated) prefix sum of increments, so
//!    estimates are monotone in τ by construction ("learn embeddings for
//!    different thresholds separately … guaranteeing monotonicity", §1).
//!
//! Training uses the same hybrid loss as our models, plus `β·KL`.

use crate::traits::{CardinalityEstimator, TrainingSet};
use cardest_data::vector::VectorView;
use cardest_nn::artifact::ArtifactError;
use cardest_nn::layers::{Dense, Layer};
use cardest_nn::loss::HybridLoss;
use cardest_nn::metrics::decode_log_card;
use cardest_nn::net::Sequential;
use cardest_nn::optim::{Adam, Optimizer};
use cardest_nn::trainer::{BatchIter, EarlyStopper, TrainConfig, TrainReport};
use cardest_nn::{Activation, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// CardNet architecture hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CardNetConfig {
    /// Latent dimensionality of the VAE embedding.
    pub latent: usize,
    /// Encoder hidden width.
    pub hidden: usize,
    /// Number of threshold buckets over `[0, τ_max]`.
    pub buckets: usize,
    /// Weight of the KL regularizer.
    pub beta_kl: f32,
    pub train: TrainConfig,
}

impl Default for CardNetConfig {
    fn default() -> Self {
        CardNetConfig {
            latent: 16,
            hidden: 64,
            buckets: 32,
            beta_kl: 1e-3,
            train: TrainConfig::default(),
        }
    }
}

/// Artifact kind tag identifying a serialized [`CardNet`].
pub const CARDNET_ARTIFACT_KIND: &str = "cardest.cardnet";

/// The trained CardNet-substitute estimator.
///
/// Serializable so the artifact machinery (`cardest_nn::artifact`) can
/// persist the trained model as one checksummed payload.
#[derive(Clone, Serialize, Deserialize)]
pub struct CardNet {
    encoder: Sequential,
    decoder: Sequential,
    latent: usize,
    buckets: usize,
    tau_max: f32,
    /// Cap on emitted estimates: twice the largest training cardinality
    /// (the decoder's softplus increments are otherwise unbounded).
    card_cap: f32,
}

impl CardNet {
    /// Builds and trains on a labelled training set; `tau_max` fixes the
    /// bucket grid.
    pub fn train(
        training: &TrainingSet<'_>,
        tau_max: f32,
        cfg: &CardNetConfig,
        seed: u64,
    ) -> (Self, TrainReport) {
        assert!(!training.is_empty(), "training set is empty");
        assert!(tau_max > 0.0, "tau_max must be positive");
        let dim = training.queries.dim();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCA2D);
        let encoder = Sequential::new(vec![
            Layer::Dense(Dense::new(&mut rng, dim, cfg.hidden, Activation::Relu)),
            Layer::Dense(Dense::new(
                &mut rng,
                cfg.hidden,
                2 * cfg.latent,
                Activation::Identity,
            )),
        ]);
        let decoder = Sequential::new(vec![
            Layer::Dense(Dense::new(
                &mut rng,
                cfg.latent,
                cfg.hidden,
                Activation::Relu,
            )),
            Layer::Dense(Dense::new(
                &mut rng,
                cfg.hidden,
                cfg.buckets,
                Activation::Identity,
            )),
        ]);
        let card_cap = training
            .samples
            .iter()
            .map(|s| s.card)
            .fold(1.0f32, f32::max)
            * 2.0;
        let mut net = CardNet {
            encoder,
            decoder,
            latent: cfg.latent,
            buckets: cfg.buckets,
            tau_max,
            card_cap,
        };
        let report = net.fit(training, cfg, seed);
        (net, report)
    }

    fn fit(&mut self, training: &TrainingSet<'_>, cfg: &CardNetConfig, seed: u64) -> TrainReport {
        let dim = training.queries.dim();
        let n = training.samples.len();
        let loss_fn = HybridLoss {
            lambda: cfg.train.lambda,
            ..HybridLoss::default()
        };
        let mut opt = Adam::new(cfg.train.learning_rate);
        let mut stopper = EarlyStopper::new(cfg.train.patience, 0.02);
        let mut qbuf: Vec<f32> = Vec::with_capacity(dim);
        let mut epoch_loss = f32::INFINITY;
        let mut epochs_run = 0;
        // Epoch-level divergence guard: the VAE's exponentials make it the
        // most explosion-prone model here, so snapshot weights + optimizer
        // every `checkpoint_every` epochs and roll back (with the LR
        // halved) when an epoch's loss goes non-finite.
        let mut recoveries = 0usize;
        let mut diverged = false;
        let mut lr_cut = 1.0f32;
        let ckpt_every = cfg.train.checkpoint_every.max(1);
        let mut ckpt = (
            self.encoder.snapshot_params(),
            self.decoder.snapshot_params(),
            opt.clone(),
            0usize,
        );
        let mut epoch = 0usize;
        while epoch < cfg.train.epochs {
            epochs_run += 1;
            // Per-epoch seeding keeps rollback replays deterministic.
            let mut rng = StdRng::seed_from_u64(
                (seed ^ 0xCA2E) ^ (epoch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let mut total = 0.0f64;
            let mut batches = 0usize;
            for idx in BatchIter::new(&mut rng, n, cfg.train.batch_size) {
                let b = idx.len();
                let mut xq = Matrix::zeros(b, dim);
                let mut taus = Vec::with_capacity(b);
                let mut cards = Vec::with_capacity(b);
                for (r, &i) in idx.iter().enumerate() {
                    let s = &training.samples[i];
                    training.queries.view(s.query).write_dense(&mut qbuf);
                    xq.row_mut(r).copy_from_slice(&qbuf);
                    taus.push(s.tau);
                    cards.push(s.card);
                }
                // ----- forward -----
                let enc = self.encoder.forward(&xq); // [b, 2L]
                let l = self.latent;
                let mut z = Matrix::zeros(b, l);
                let mut eps = Matrix::zeros(b, l);
                for r in 0..b {
                    for j in 0..l {
                        let e = cardest_data::synth::gauss(&mut rng);
                        eps.set(r, j, e);
                        let mu = enc.get(r, j);
                        let lv = enc.get(r, l + j).clamp(-8.0, 8.0);
                        // cardest-lint: allow(raw-exp-decode): VAE reparameterization / KL math on clamped log-variance, not a cardinality decode
                        z.set(r, j, mu + (0.5 * lv).exp() * e);
                    }
                }
                let dec = self.decoder.forward(&z); // [b, buckets]
                                                    // Increments and prefix estimate at each sample's τ.
                let (pred_log, cum_info) = self.prefix_estimates(&dec, &taus);
                let (loss, grad_log) = loss_fn.eval(&pred_log, &cards);
                // KL term.
                let mut kl = 0.0f64;
                for r in 0..b {
                    for j in 0..l {
                        let mu = enc.get(r, j);
                        let lv = enc.get(r, l + j).clamp(-8.0, 8.0);
                        // cardest-lint: allow(raw-exp-decode): VAE reparameterization / KL math on clamped log-variance, not a cardinality decode
                        kl += 0.5 * (lv.exp() + mu * mu - 1.0 - lv) as f64;
                    }
                }
                let kl = (kl / b as f64) as f32;
                total += (loss + cfg.beta_kl * kl) as f64;
                batches += 1;
                // ----- backward -----
                // dL/ddec via the prefix-sum/softplus path.
                let mut gdec = Matrix::zeros(b, self.buckets);
                for r in 0..b {
                    let (bucket, frac, chat) = cum_info[r];
                    let gcum = grad_log[r] / (chat + 1e-3);
                    for j in 0..=bucket.min(self.buckets - 1) {
                        let w = if j == bucket { frac } else { 1.0 };
                        // cardest-lint: allow(float-total-order): w is either the 1.0 literal or frac; 0.0 is an exact sentinel
                        if w == 0.0 {
                            continue;
                        }
                        // dinc/ddec = σ(dec) (softplus derivative).
                        let sp = sigmoid(dec.get(r, j));
                        gdec.set(r, j, gcum * w * sp);
                    }
                }
                let gz = self.decoder.backward(&gdec);
                // Assemble encoder output gradient: z-path + KL-path.
                let mut genc = Matrix::zeros(b, 2 * l);
                let kl_scale = cfg.beta_kl / b as f32;
                for r in 0..b {
                    for j in 0..l {
                        let mu = enc.get(r, j);
                        let lv = enc.get(r, l + j).clamp(-8.0, 8.0);
                        let gzj = gz.get(r, j);
                        genc.set(r, j, gzj + kl_scale * mu);
                        // cardest-lint: allow(raw-exp-decode): VAE reparameterization / KL math on clamped log-variance, not a cardinality decode
                        let dz_dlv = 0.5 * (0.5 * lv).exp() * eps.get(r, j);
                        // cardest-lint: allow(raw-exp-decode): VAE reparameterization / KL math on clamped log-variance, not a cardinality decode
                        genc.set(r, l + j, gzj * dz_dlv + kl_scale * 0.5 * (lv.exp() - 1.0));
                    }
                }
                self.encoder.backward(&genc);
                let mut params = self.encoder.params_mut();
                params.extend(self.decoder.params_mut());
                opt.step(&mut params);
            }
            epoch_loss = (total / batches.max(1) as f64) as f32;
            if !epoch_loss.is_finite() {
                recoveries += 1;
                self.encoder.restore_params(&ckpt.0);
                self.decoder.restore_params(&ckpt.1);
                self.encoder.zero_grads();
                self.decoder.zero_grads();
                opt = ckpt.2.clone();
                if recoveries > cfg.train.max_recoveries {
                    diverged = true;
                    break;
                }
                lr_cut *= 0.5;
                opt.set_learning_rate(opt.learning_rate() * lr_cut);
                epoch = ckpt.3;
                continue;
            }
            opt.set_learning_rate(opt.learning_rate() * cfg.train.lr_decay);
            epoch += 1;
            if stopper.should_stop(epoch_loss) {
                break;
            }
            if epoch < cfg.train.epochs && epoch % ckpt_every == 0 {
                ckpt = (
                    self.encoder.snapshot_params(),
                    self.decoder.snapshot_params(),
                    opt.clone(),
                    epoch,
                );
                lr_cut = 1.0;
            }
        }
        TrainReport {
            epochs_run,
            final_loss: epoch_loss,
            recoveries,
            diverged,
        }
    }

    /// Saves the trained estimator as a versioned, checksummed artifact
    /// (atomic write; see `cardest_nn::artifact` for the layout).
    pub fn save_artifact(&self, path: &std::path::Path) -> Result<(), ArtifactError> {
        let json =
            serde_json::to_string(self).map_err(|e| ArtifactError::Malformed(e.to_string()))?;
        cardest_nn::artifact::write_atomic(path, CARDNET_ARTIFACT_KIND, json.as_bytes())
    }

    /// Loads an artifact written by [`CardNet::save_artifact`], verifying
    /// magic, format version, kind, and checksum first.
    pub fn load_artifact(path: &std::path::Path) -> Result<Self, ArtifactError> {
        let json = cardest_nn::artifact::read_json_payload(path, CARDNET_ARTIFACT_KIND)?;
        serde_json::from_str(&json).map_err(|e| ArtifactError::Malformed(e.to_string()))
    }

    /// Converts decoder outputs into per-sample `ln card` estimates via the
    /// softplus-increment prefix sum, interpolating inside the bucket that
    /// contains τ. Returns `(pred_log, per-sample (bucket, frac, ĉ))`.
    fn prefix_estimates(&self, dec: &Matrix, taus: &[f32]) -> (Vec<f32>, Vec<(usize, f32, f32)>) {
        let b = dec.rows();
        let mut pred_log = Vec::with_capacity(b);
        let mut info = Vec::with_capacity(b);
        for (r, &tau) in taus.iter().enumerate().take(b) {
            let pos = (tau / self.tau_max).clamp(0.0, 1.0) * self.buckets as f32;
            let bucket = (pos.floor() as usize).min(self.buckets - 1);
            let frac = (pos - bucket as f32).clamp(0.0, 1.0);
            let mut cum = 0.0f32;
            for j in 0..=bucket {
                let inc = softplus(dec.get(r, j));
                cum += if j == bucket { frac * inc } else { inc };
            }
            pred_log.push((cum + 1e-3).ln());
            info.push((bucket, frac, cum));
        }
        (pred_log, info)
    }

    /// Batched estimate at inference time (z = μ, no sampling): one
    /// encoder/decoder pass for the whole batch, immutably.
    fn infer_batch(&self, queries: &[(VectorView<'_>, f32)]) -> Vec<f32> {
        if queries.is_empty() {
            return Vec::new();
        }
        let b = queries.len();
        let dim = self.encoder.layers()[0].in_dim();
        cardest_nn::scratch::with_thread_scratch(|scratch| {
            let mut xq = scratch.take(b, dim);
            let mut qbuf: Vec<f32> = Vec::with_capacity(dim);
            for (r, &(q, _)) in queries.iter().enumerate() {
                q.write_dense(&mut qbuf);
                xq.row_mut(r).copy_from_slice(&qbuf);
            }
            let enc = self.encoder.infer(&xq, scratch);
            let mut z = scratch.take(b, self.latent);
            for r in 0..b {
                z.row_mut(r).copy_from_slice(&enc.row(r)[..self.latent]);
            }
            let dec = self.decoder.infer(&z, scratch);
            let taus: Vec<f32> = queries.iter().map(|&(_, tau)| tau).collect();
            let (pred_log, _) = self.prefix_estimates(&dec, &taus);
            for m in [xq, enc, z, dec] {
                scratch.recycle(m);
            }
            pred_log
                .iter()
                .map(|&p| decode_log_card(p, self.card_cap))
                .collect()
        })
    }
}

impl CardinalityEstimator for CardNet {
    fn name(&self) -> &'static str {
        "CardNet"
    }

    fn estimate(&self, q: VectorView<'_>, tau: f32) -> f32 {
        self.infer_batch(&[(q, tau)])[0]
    }

    fn estimate_batch(&self, queries: &[(VectorView<'_>, f32)]) -> Vec<f32> {
        self.infer_batch(queries)
    }

    fn model_bytes(&self) -> usize {
        (self.encoder.param_count() + self.decoder.param_count()) * std::mem::size_of::<f32>()
    }

    fn expected_dim(&self) -> Option<usize> {
        Some(self.encoder.layers()[0].in_dim())
    }

    // The bucket grid covers [0, τ_max]; beyond it the prefix sum saturates
    // at the last bucket, so the trained range ends there.
    fn tau_bound(&self) -> Option<f32> {
        Some(self.tau_max)
    }
}

#[inline]
fn softplus(x: f32) -> f32 {
    // Numerically stable log(1 + e^x).
    if x > 15.0 {
        x
    } else {
        // cardest-lint: allow(raw-exp-decode): stable softplus log(1+e^x) internal, input already range-guarded
        x.exp().ln_1p()
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    cardest_nn::activation::sigmoid(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::paper::{DatasetSpec, PaperDataset};
    use cardest_data::workload::SearchWorkload;
    use cardest_nn::metrics::ErrorSummary;

    fn tiny() -> (SearchWorkload, DatasetSpec) {
        let spec = DatasetSpec {
            n_data: 800,
            n_train_queries: 60,
            n_test_queries: 20,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(61);
        let w = SearchWorkload::build(&data, &spec, 61);
        (w, spec)
    }

    #[test]
    fn estimates_are_monotone_in_tau_by_construction() {
        let (w, spec) = tiny();
        let training = TrainingSet::new(&w.queries, &w.train);
        let cfg = CardNetConfig {
            train: TrainConfig {
                epochs: 5,
                ..Default::default()
            },
            ..Default::default()
        };
        let (net, _) = CardNet::train(&training, spec.tau_max, &cfg, 61);
        for q in 0..6 {
            let mut prev = -1.0f32;
            for i in 0..=20 {
                let tau = spec.tau_max * i as f32 / 20.0;
                let e = net.estimate(w.queries.view(q), tau);
                assert!(e >= prev - 1e-5, "not monotone at q={q}, τ={tau}");
                prev = e;
            }
        }
    }

    #[test]
    fn training_improves_over_initialization() {
        let (w, spec) = tiny();
        let training = TrainingSet::new(&w.queries, &w.train);
        let eval = |net: &CardNet| {
            let pairs: Vec<(f32, f32)> = w
                .test
                .iter()
                .map(|s| (net.estimate(w.queries.view(s.query), s.tau), s.card))
                .collect();
            ErrorSummary::from_q_errors(&pairs).mean
        };
        let cfg0 = CardNetConfig {
            train: TrainConfig {
                epochs: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let (untrained, _) = CardNet::train(&training, spec.tau_max, &cfg0, 62);
        let cfg = CardNetConfig {
            train: TrainConfig {
                epochs: 40,
                ..Default::default()
            },
            ..Default::default()
        };
        let (trained, report) = CardNet::train(&training, spec.tau_max, &cfg, 62);
        assert!(report.final_loss.is_finite());
        assert!(
            eval(&trained) < eval(&untrained) * 1.05,
            "training did not help: {} vs {}",
            eval(&trained),
            eval(&untrained)
        );
    }

    #[test]
    fn inference_is_deterministic() {
        let (w, spec) = tiny();
        let training = TrainingSet::new(&w.queries, &w.train);
        let cfg = CardNetConfig {
            train: TrainConfig {
                epochs: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let (net, _) = CardNet::train(&training, spec.tau_max, &cfg, 63);
        let a = net.estimate(w.queries.view(0), 0.1);
        let b = net.estimate(w.queries.view(0), 0.1);
        assert_eq!(a, b, "inference must not sample the latent");
    }

    #[test]
    fn model_bytes_are_positive_and_param_based() {
        let (w, spec) = tiny();
        let training = TrainingSet::new(&w.queries, &w.train);
        let cfg = CardNetConfig {
            train: TrainConfig {
                epochs: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let (net, _) = CardNet::train(&training, spec.tau_max, &cfg, 64);
        assert!(net.model_bytes() > 0);
    }
}
