//! The guarded serving wrapper.
//!
//! [`GuardedEstimator`] stands between a trained model and its callers and
//! enforces the invariants no learned estimator guarantees by itself
//! (cf. the monotonic-estimation line of work — a serving layer can check
//! `card ∈ [0, |D|]` and monotonicity in τ independently of the model):
//!
//! * **Input validation** — malformed queries (wrong dimensionality,
//!   NaN/Inf components, NaN/negative τ) are rejected with a typed
//!   [`CardestError`] before any forward pass.
//! * **Graceful degradation** — recoverable conditions (τ beyond the
//!   trained range, a non-finite or negative model output) are answered by
//!   a configured cheap fallback (sampling or histogram baseline) instead
//!   of an error, with a counter recording every fallback taken.
//! * **Output clamping** — estimates are clamped to `[0, |D|]`; a search
//!   cardinality cannot exceed the dataset.
//! * **Monotonicity repair** (optional) — within a batch, consecutive
//!   entries that repeat the same query with non-decreasing τ get
//!   non-decreasing estimates (a running max), the cheap serving-side
//!   version of the monotone-by-construction models.
//!
//! Counters are atomic: one wrapper is shared across serving threads like
//! the estimators themselves.

use crate::traits::CardinalityEstimator;
use cardest_data::validate::CardestError;
use cardest_data::vector::{VectorData, VectorView};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Snapshot of a [`GuardedEstimator`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Queries that reached a (model or fallback) estimate.
    pub served: usize,
    /// Queries rejected before any estimate (unrecoverable input errors).
    pub rejected: usize,
    /// Queries answered by the fallback estimator.
    pub fallbacks: usize,
    /// Estimates clamped into `[0, |D|]`.
    pub clamped: usize,
    /// Estimates raised by the monotonicity repair.
    pub monotone_fixes: usize,
}

/// A serving wrapper around a primary estimator and a cheap fallback.
///
/// The fallback must accept the same queries as the primary (same
/// dimensionality) and should be model-free — a `SamplingEstimator` or
/// `HistogramEstimator` — so it cannot share the primary's failure modes.
pub struct GuardedEstimator<E, F> {
    inner: E,
    fallback: F,
    /// Dataset size — the output clamp's upper bound.
    n_data: usize,
    monotone: bool,
    served: AtomicUsize,
    rejected: AtomicUsize,
    fallbacks: AtomicUsize,
    clamped: AtomicUsize,
    monotone_fixes: AtomicUsize,
}

impl<E: CardinalityEstimator, F: CardinalityEstimator> GuardedEstimator<E, F> {
    /// Wraps `inner`, degrading to `fallback`; estimates are clamped to
    /// `[0, n_data]`.
    pub fn new(inner: E, fallback: F, n_data: usize) -> Self {
        GuardedEstimator {
            inner,
            fallback,
            n_data,
            monotone: false,
            served: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            fallbacks: AtomicUsize::new(0),
            clamped: AtomicUsize::new(0),
            monotone_fixes: AtomicUsize::new(0),
        }
    }

    /// Enables the in-batch monotone-in-τ repair.
    pub fn with_monotone(mut self, on: bool) -> Self {
        self.monotone = on;
        self
    }

    /// The wrapped primary estimator.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The configured fallback estimator.
    pub fn fallback(&self) -> &F {
        &self.fallback
    }

    /// Counter snapshot (monotonically increasing over the wrapper's life).
    pub fn stats(&self) -> GuardStats {
        GuardStats {
            served: self.served.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            clamped: self.clamped.load(Ordering::Relaxed),
            monotone_fixes: self.monotone_fixes.load(Ordering::Relaxed),
        }
    }

    /// Serves one query; see [`GuardedEstimator::serve_batch`].
    pub fn serve(&self, q: VectorView<'_>, tau: f32) -> Result<f32, CardestError> {
        self.serve_batch(&[(q, tau)]).pop().unwrap_or(Ok(0.0))
    }

    /// Serves a batch, returning one result per entry in input order.
    ///
    /// Well-formed entries run through the primary in one batched forward
    /// pass; recoverable conditions (τ beyond the trained range, non-finite
    /// or negative model output) are re-answered by the fallback; malformed
    /// inputs come back as `Err` without touching either estimator.
    pub fn serve_batch(&self, queries: &[(VectorView<'_>, f32)]) -> Vec<Result<f32, CardestError>> {
        let guard = self.inner.guard();
        let mut out: Vec<Result<f32, CardestError>> = Vec::with_capacity(queries.len());
        let mut primary_rows: Vec<usize> = Vec::new();
        let mut fallback_rows: Vec<usize> = Vec::new();
        for (i, &(q, tau)) in queries.iter().enumerate() {
            match guard.validate(i, q, tau) {
                Ok(()) => {
                    primary_rows.push(i);
                    out.push(Ok(f32::NAN)); // placeholder, overwritten below
                }
                Err(e) if e.is_recoverable() => {
                    fallback_rows.push(i);
                    out.push(Ok(f32::NAN));
                }
                Err(e) => {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    out.push(Err(e));
                }
            }
        }

        if !primary_rows.is_empty() {
            let batch: Vec<(VectorView<'_>, f32)> =
                primary_rows.iter().map(|&i| queries[i]).collect();
            let preds = self.inner.estimate_batch(&batch);
            for (&i, pred) in primary_rows.iter().zip(preds) {
                if pred.is_finite() && pred >= 0.0 {
                    out[i] = Ok(self.clamp(pred));
                } else {
                    // The model misbehaved on a well-formed input: degrade.
                    fallback_rows.push(i);
                }
            }
        }

        if !fallback_rows.is_empty() {
            fallback_rows.sort_unstable();
            let batch: Vec<(VectorView<'_>, f32)> =
                fallback_rows.iter().map(|&i| queries[i]).collect();
            let preds = self.fallback.estimate_batch(&batch);
            for (&i, pred) in fallback_rows.iter().zip(preds) {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                if pred.is_finite() {
                    out[i] = Ok(self.clamp(pred.max(0.0)));
                } else {
                    // Even the fallback failed — surface it, don't invent.
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    out[i] = Err(CardestError::NonFiniteEstimate {
                        index: i,
                        value: pred,
                    });
                }
            }
        }

        if self.monotone {
            self.repair_monotone(queries, &mut out);
        }
        let served = out.iter().filter(|r| r.is_ok()).count();
        self.served.fetch_add(served, Ordering::Relaxed);
        out
    }

    fn clamp(&self, v: f32) -> f32 {
        let cap = self.n_data as f32;
        let c = v.clamp(0.0, cap);
        if c != v {
            self.clamped.fetch_add(1, Ordering::Relaxed);
        }
        c
    }

    /// Raises estimates to a running max across consecutive entries that
    /// repeat the same query with non-decreasing τ. A τ decrease or a new
    /// query starts a fresh run.
    fn repair_monotone(
        &self,
        queries: &[(VectorView<'_>, f32)],
        out: &mut [Result<f32, CardestError>],
    ) {
        let mut run_start: Option<usize> = None;
        let mut floor = 0.0f32;
        let mut prev_tau = f32::NEG_INFINITY;
        for i in 0..queries.len() {
            let (q, tau) = queries[i];
            let continues = run_start
                .map(|s| views_equal(queries[s].0, q) && tau >= prev_tau)
                .unwrap_or(false);
            if !continues {
                run_start = Some(i);
                floor = 0.0;
            }
            prev_tau = tau;
            if let Ok(v) = out[i] {
                if v < floor {
                    out[i] = Ok(v.max(floor));
                    self.monotone_fixes.fetch_add(1, Ordering::Relaxed);
                }
                floor = floor.max(v);
            }
        }
    }
}

/// Content equality of two query views (same representation required).
fn views_equal(a: VectorView<'_>, b: VectorView<'_>) -> bool {
    match (a, b) {
        (VectorView::Dense(x), VectorView::Dense(y)) => x == y,
        (VectorView::Binary { words: wx, dim: dx }, VectorView::Binary { words: wy, dim: dy }) => {
            dx == dy && wx == wy
        }
        _ => false,
    }
}

/// The wrapper is itself an estimator, so the bench harness and join paths
/// can use it anywhere an unguarded model goes. The infallible methods
/// answer rejected queries with 0 — the caller that wants the error uses
/// [`GuardedEstimator::serve_batch`].
impl<E: CardinalityEstimator, F: CardinalityEstimator> CardinalityEstimator
    for GuardedEstimator<E, F>
{
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn estimate(&self, q: VectorView<'_>, tau: f32) -> f32 {
        self.serve(q, tau).unwrap_or(0.0)
    }

    fn estimate_batch(&self, queries: &[(VectorView<'_>, f32)]) -> Vec<f32> {
        self.serve_batch(queries)
            .into_iter()
            .map(|r| r.unwrap_or(0.0))
            .collect()
    }

    fn estimate_join(&self, queries: &VectorData, member_ids: &[usize], tau: f32) -> f32 {
        let batch: Vec<(VectorView<'_>, f32)> =
            member_ids.iter().map(|&i| (queries.view(i), tau)).collect();
        self.estimate_batch(&batch).iter().sum()
    }

    fn model_bytes(&self) -> usize {
        self.inner.model_bytes() + self.fallback.model_bytes()
    }

    fn expected_dim(&self) -> Option<usize> {
        self.inner.expected_dim()
    }

    // τ beyond the primary's trained range is served by the fallback, so
    // the wrapper's own admissible range is the fallback's.
    fn tau_bound(&self) -> Option<f32> {
        self.fallback.tau_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Primary with a trained range and scripted failures.
    struct Flaky {
        dim: usize,
        tau_max: f32,
        /// Return NaN when τ is in this half-open interval.
        nan_from: f32,
    }

    impl CardinalityEstimator for Flaky {
        fn name(&self) -> &'static str {
            "flaky"
        }
        fn estimate(&self, _q: VectorView<'_>, tau: f32) -> f32 {
            if tau >= self.nan_from {
                f32::NAN
            } else {
                tau * 1000.0
            }
        }
        fn model_bytes(&self) -> usize {
            0
        }
        fn expected_dim(&self) -> Option<usize> {
            Some(self.dim)
        }
        fn tau_bound(&self) -> Option<f32> {
            Some(self.tau_max)
        }
    }

    /// Fallback: τ·10, unconditionally.
    struct Cheap;
    impl CardinalityEstimator for Cheap {
        fn name(&self) -> &'static str {
            "cheap"
        }
        fn estimate(&self, _q: VectorView<'_>, tau: f32) -> f32 {
            tau * 10.0
        }
        fn model_bytes(&self) -> usize {
            0
        }
    }

    fn guarded(nan_from: f32) -> GuardedEstimator<Flaky, Cheap> {
        GuardedEstimator::new(
            Flaky {
                dim: 2,
                tau_max: 1.0,
                nan_from,
            },
            Cheap,
            100,
        )
    }

    #[test]
    fn clean_queries_pass_through_clamped() {
        let g = guarded(f32::INFINITY);
        let q = [0.0f32, 0.0];
        assert_eq!(g.serve(VectorView::Dense(&q), 0.05), Ok(50.0));
        // τ = 0.5 → raw 500, clamped to |D| = 100.
        assert_eq!(g.serve(VectorView::Dense(&q), 0.5), Ok(100.0));
        let s = g.stats();
        assert_eq!((s.served, s.rejected, s.fallbacks, s.clamped), (2, 0, 0, 1));
    }

    #[test]
    fn malformed_inputs_are_rejected_not_served() {
        let g = guarded(f32::INFINITY);
        let q = [0.0f32, 0.0];
        assert!(g.serve(VectorView::Dense(&[0.0; 3]), 0.1).is_err());
        assert!(g.serve(VectorView::Dense(&[f32::NAN, 0.0]), 0.1).is_err());
        assert!(g.serve(VectorView::Dense(&q), -0.5).is_err());
        assert!(g.serve(VectorView::Dense(&q), f32::NAN).is_err());
        let s = g.stats();
        assert_eq!((s.served, s.rejected, s.fallbacks), (0, 4, 0));
        // The infallible surface answers 0 instead.
        assert_eq!(g.estimate(VectorView::Dense(&[0.0; 3]), 0.1), 0.0);
    }

    #[test]
    fn tau_beyond_trained_range_degrades_to_fallback() {
        let g = guarded(f32::INFINITY);
        let q = [0.0f32, 0.0];
        // τ = 2.0 > tau_max = 1.0 → fallback answers 20.
        assert_eq!(g.serve(VectorView::Dense(&q), 2.0), Ok(20.0));
        assert_eq!(g.stats().fallbacks, 1);
    }

    #[test]
    fn non_finite_model_output_degrades_to_fallback() {
        let g = guarded(0.5); // model NaNs for τ ≥ 0.5
        let q = [0.0f32, 0.0];
        let batch = [
            (VectorView::Dense(&q), 0.1),
            (VectorView::Dense(&q), 0.7),
            (VectorView::Dense(&q), 0.2),
        ];
        let got = g.serve_batch(&batch);
        assert_eq!(got, vec![Ok(100.0), Ok(7.0), Ok(100.0)]);
        let s = g.stats();
        assert_eq!((s.served, s.fallbacks), (3, 1));
    }

    #[test]
    fn monotone_repair_raises_only_within_a_run() {
        /// Deliberately non-monotone primary: estimate dips at τ = 0.3.
        struct Dip;
        impl CardinalityEstimator for Dip {
            fn name(&self) -> &'static str {
                "dip"
            }
            fn estimate(&self, _q: VectorView<'_>, tau: f32) -> f32 {
                if (tau - 0.3).abs() < 1e-6 {
                    1.0
                } else {
                    tau * 100.0
                }
            }
            fn model_bytes(&self) -> usize {
                0
            }
        }
        let g = GuardedEstimator::new(Dip, Cheap, 1000).with_monotone(true);
        let a = [0.0f32, 0.0];
        let b = [1.0f32, 1.0];
        let batch = [
            (VectorView::Dense(&a), 0.1), // 10
            (VectorView::Dense(&a), 0.2), // 20
            (VectorView::Dense(&a), 0.3), // dips to 1 → repaired to 20
            (VectorView::Dense(&a), 0.4), // 40
            (VectorView::Dense(&b), 0.3), // new query: dip NOT repaired
        ];
        let got: Vec<f32> = g
            .serve_batch(&batch)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got, vec![10.0, 20.0, 20.0, 40.0, 1.0]);
        assert_eq!(g.stats().monotone_fixes, 1);
    }

    #[test]
    fn wrapper_is_shareable_across_threads() {
        let g = std::sync::Arc::new(guarded(f32::INFINITY));
        let q = [0.0f32, 0.0];
        std::thread::scope(|s| {
            for _ in 0..4 {
                let g = g.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        let _ = g.serve(VectorView::Dense(&q), 0.05);
                    }
                });
            }
        });
        assert_eq!(g.stats().served, 100);
    }
}
