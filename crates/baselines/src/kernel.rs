//! The kernel-based baseline (Table 2 row 8), following the paper's
//! description of Mattig et al. (EDBT 2018): model the distance density of
//! each retained sample with a Gaussian kernel and estimate the
//! cardinality as the scaled sum of the kernels' cumulative densities at
//! the threshold:
//!
//! `card̂(q, τ) = (N / m) · Σᵢ Φ((τ − d(q, sᵢ)) / h)`
//!
//! where `Φ` is the standard normal CDF and `h` a bandwidth set by Scott's
//! rule on the sampled distance spread. Unlike plain sampling this gives
//! smooth, non-zero estimates near the sample points — but as the paper
//! observes it "cannot fit the distance distribution well" and needs a
//! kernel evaluation per sample, making it slow at estimation time.

use crate::traits::CardinalityEstimator;
use cardest_data::metric::Metric;
use cardest_data::vector::{VectorData, VectorView};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Gaussian-kernel cardinality estimator over a retained sample.
pub struct KernelEstimator {
    sample: VectorData,
    metric: Metric,
    scale: f32,
    /// Fixed part of the bandwidth; the per-query bandwidth also adapts to
    /// the observed distance spread.
    bandwidth_floor: f32,
}

impl KernelEstimator {
    /// Retains `ratio · n` sample points.
    pub fn new(data: &VectorData, metric: Metric, ratio: f32, seed: u64) -> Self {
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "sampling ratio must be in (0, 1]"
        );
        let m = ((data.len() as f32 * ratio).round() as usize).clamp(2, data.len());
        let mut ids: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4E5);
        ids.shuffle(&mut rng);
        ids.truncate(m);
        KernelEstimator {
            sample: data.gather(&ids),
            metric,
            scale: data.len() as f32 / m as f32,
            bandwidth_floor: 1e-4,
        }
    }

    pub fn sample_size(&self) -> usize {
        self.sample.len()
    }
}

impl CardinalityEstimator for KernelEstimator {
    fn name(&self) -> &'static str {
        "Kernel-based"
    }

    fn estimate(&self, q: VectorView<'_>, tau: f32) -> f32 {
        let m = self.sample.len();
        let dists: Vec<f32> = (0..m)
            .map(|i| self.metric.distance(q, self.sample.view(i)))
            .collect();
        // Scott's rule on the distance sample: h = σ · m^(−1/5).
        let mean = dists.iter().sum::<f32>() / m as f32;
        let var = dists.iter().map(|d| (d - mean) * (d - mean)).sum::<f32>() / m as f32;
        let h = (var.sqrt() * (m as f32).powf(-0.2)).max(self.bandwidth_floor);
        let total: f32 = dists.iter().map(|&d| normal_cdf((tau - d) / h)).sum();
        total * self.scale
    }

    fn model_bytes(&self) -> usize {
        self.sample.heap_bytes()
    }

    // The kernel CDF is defined for any finite τ; only the dimensionality
    // is constrained.
    fn expected_dim(&self) -> Option<usize> {
        Some(self.sample.dim())
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max absolute error ≈ 1.5e-7, plenty for an estimator baseline).
pub fn normal_cdf(x: f32) -> f32 {
    0.5 * (1.0 + erf(x as f64 / std::f64::consts::SQRT_2) as f32)
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            // cardest-lint: allow(raw-exp-decode): Abramowitz–Stegun erf polynomial, not a cardinality decode
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::paper::{DatasetSpec, PaperDataset};

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.0) - 0.8413).abs() < 1e-3);
        assert!((normal_cdf(-1.0) - 0.1587).abs() < 1e-3);
        assert!(normal_cdf(6.0) > 0.999);
        assert!(normal_cdf(-6.0) < 1e-3);
    }

    #[test]
    fn estimates_are_smooth_and_monotone_in_tau() {
        let spec = DatasetSpec {
            n_data: 800,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(41);
        let k = KernelEstimator::new(&data, spec.metric, 0.05, 41);
        let q = data.view(3);
        let mut prev = -1.0f32;
        for i in 0..10 {
            let tau = i as f32 * 0.05;
            let est = k.estimate(q, tau);
            assert!(
                est >= prev - 1e-4,
                "kernel estimate not monotone at τ={tau}"
            );
            assert!(est.is_finite() && est >= 0.0);
            prev = est;
        }
    }

    #[test]
    fn no_zero_tuple_problem_unlike_plain_sampling() {
        // Pick a threshold just below the nearest sample distance: plain
        // sampling counts zero matches, but the kernel's smoothed CDF
        // still produces a positive estimate.
        let spec = DatasetSpec {
            n_data: 800,
            ..PaperDataset::GloVe300.spec()
        };
        let data = spec.generate(42);
        let k = KernelEstimator::new(&data, spec.metric, 0.02, 42);
        let q = data.view(1);
        let nearest = (0..k.sample_size())
            .map(|i| spec.metric.distance(q, k.sample.view(i)))
            .fold(f32::INFINITY, f32::min);
        let tau = nearest * 0.95;
        let zero_hits = (0..k.sample_size())
            .filter(|&i| spec.metric.distance(q, k.sample.view(i)) <= tau)
            .count();
        assert_eq!(zero_hits, 0, "threshold was supposed to miss every sample");
        let est = k.estimate(q, tau);
        assert!(est > 0.0, "kernel estimate collapsed to zero at τ={tau}");
    }

    #[test]
    fn large_tau_estimate_approaches_dataset_size() {
        let spec = DatasetSpec {
            n_data: 500,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(43);
        let k = KernelEstimator::new(&data, spec.metric, 0.2, 43);
        let est = k.estimate(data.view(0), 1.0); // every point within τ
        assert!(
            (est - 500.0).abs() / 500.0 < 0.1,
            "estimate {est} should be close to the dataset size"
        );
    }
}
