//! The sampling baseline of §6 (Table 2 row 7): keep a random sample of
//! the dataset, count exact matches on the sample, and scale by the
//! sampling ratio.
//!
//! Three variants appear in the evaluation:
//! * `Sampling (1%)` and `Sampling (10%)` — fixed sampling ratios,
//! * `Sampling (equal)` — a sample sized to occupy the same memory as the
//!   GL+ model (Exp-2's apples-to-apples comparison).
//!
//! The known weakness the paper exercises is the 0-tuple problem: a
//! low-selectivity query often matches nothing in a small sample, making
//! the estimate 0 regardless of the true cardinality.

use crate::traits::CardinalityEstimator;
use cardest_data::metric::Metric;
use cardest_data::vector::{VectorData, VectorView};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Random-sample cardinality estimator.
pub struct SamplingEstimator {
    name: &'static str,
    sample: VectorData,
    metric: Metric,
    /// `n_data / n_sample` — multiplied into the sample count.
    scale: f32,
}

impl SamplingEstimator {
    /// Samples `ratio · n` points (at least one).
    pub fn with_ratio(
        data: &VectorData,
        metric: Metric,
        ratio: f32,
        seed: u64,
        name: &'static str,
    ) -> Self {
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "sampling ratio must be in (0, 1]"
        );
        let m = ((data.len() as f32 * ratio).round() as usize).clamp(1, data.len());
        Self::with_count(data, metric, m, seed, name)
    }

    /// Samples exactly `m` points.
    pub fn with_count(
        data: &VectorData,
        metric: Metric,
        m: usize,
        seed: u64,
        name: &'static str,
    ) -> Self {
        let m = m.clamp(1, data.len());
        let mut ids: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x005A_3B1E);
        ids.shuffle(&mut rng);
        ids.truncate(m);
        SamplingEstimator {
            name,
            sample: data.gather(&ids),
            metric,
            scale: data.len() as f32 / m as f32,
        }
    }

    /// The `Sampling (equal)` variant: a sample sized to occupy
    /// `target_bytes` of memory — the GL+ model's footprint in Exp-2.
    pub fn with_equal_bytes(
        data: &VectorData,
        metric: Metric,
        target_bytes: usize,
        seed: u64,
    ) -> Self {
        let per_point = (data.heap_bytes() / data.len().max(1)).max(1);
        let m = (target_bytes / per_point).max(1);
        Self::with_count(data, metric, m, seed, "Sampling (equal)")
    }

    /// Number of retained sample points.
    pub fn sample_size(&self) -> usize {
        self.sample.len()
    }
}

impl CardinalityEstimator for SamplingEstimator {
    fn name(&self) -> &'static str {
        self.name
    }

    fn estimate(&self, q: VectorView<'_>, tau: f32) -> f32 {
        // Batched scan: one kernel dispatch for the whole sample.
        let hits = self.metric.count_within(q, &self.sample, tau);
        hits as f32 * self.scale
    }

    fn model_bytes(&self) -> usize {
        self.sample.heap_bytes()
    }

    // Counting on the sample is exact for any finite τ, so only the
    // dimensionality is constrained.
    fn expected_dim(&self) -> Option<usize> {
        Some(self.sample.dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::paper::{DatasetSpec, PaperDataset};

    #[test]
    fn full_sample_is_exact() {
        let spec = DatasetSpec {
            n_data: 300,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(31);
        let s = SamplingEstimator::with_ratio(&data, spec.metric, 1.0, 31, "Sampling (100%)");
        let q = data.view(0);
        let tau = 0.2;
        let brute = (0..data.len())
            .filter(|&p| spec.metric.distance(q, data.view(p)) <= tau)
            .count() as f32;
        assert_eq!(s.estimate(q, tau), brute);
    }

    #[test]
    fn scaling_is_unbiased_in_expectation() {
        let spec = DatasetSpec {
            n_data: 1000,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(32);
        let q = data.view(0);
        let tau = 0.25;
        let truth = (0..data.len())
            .filter(|&p| spec.metric.distance(q, data.view(p)) <= tau)
            .count() as f32;
        // Average over many sample draws.
        let mut acc = 0.0;
        let trials = 30;
        for t in 0..trials {
            let s = SamplingEstimator::with_ratio(&data, spec.metric, 0.1, t, "Sampling");
            acc += s.estimate(q, tau);
        }
        let mean = acc / trials as f32;
        assert!(
            (mean - truth).abs() <= 0.35 * truth.max(10.0),
            "mean estimate {mean} vs truth {truth}"
        );
    }

    #[test]
    fn zero_tuple_problem_manifests_on_tiny_samples() {
        // A very selective query on a very small sample should usually
        // return exactly 0 — the failure mode the paper discusses.
        let spec = DatasetSpec {
            n_data: 2000,
            ..PaperDataset::GloVe300.spec()
        };
        let data = spec.generate(33);
        let s = SamplingEstimator::with_count(&data, spec.metric, 10, 33, "Sampling (tiny)");
        // τ = 0 matches only the query itself (selectivity 1/2000).
        let est = s.estimate(data.view(7), 1e-6);
        assert_eq!(est, 0.0, "expected the 0-tuple problem");
    }

    #[test]
    fn equal_bytes_variant_respects_budget() {
        let spec = DatasetSpec {
            n_data: 500,
            ..PaperDataset::YouTube.spec()
        };
        let data = spec.generate(34);
        let target = 64 * 1024;
        let s = SamplingEstimator::with_equal_bytes(&data, spec.metric, target, 34);
        assert!(s.model_bytes() <= target + data.heap_bytes() / data.len());
        assert!(s.sample_size() >= 1);
    }
}
