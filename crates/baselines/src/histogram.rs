//! A query-oblivious histogram baseline.
//!
//! Classic pre-learned-estimation systems keep one global distance
//! distribution: sample pairs offline, build a CDF over distances, and
//! answer `card̂(q, τ) = n · CDF(τ)` for *every* query. It is the
//! strawman the query-aware methods implicitly improve on — §1's point
//! that "cardinalities of similarity queries are related to both query
//! vector and distance threshold" is exactly what this estimator ignores.
//! Kept as a library baseline (and exercised by the integration tests to
//! show the query-aware estimators beat it on clustered data).

use crate::traits::CardinalityEstimator;
use cardest_data::metric::Metric;
use cardest_data::vector::{VectorData, VectorView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Global distance-distribution estimator: one CDF for all queries.
pub struct HistogramEstimator {
    /// Sorted sample of pairwise distances.
    distances: Vec<f32>,
    n_data: usize,
}

impl HistogramEstimator {
    /// Samples `pairs` random point pairs and keeps their sorted distances.
    pub fn build(data: &VectorData, metric: Metric, pairs: usize, seed: u64) -> Self {
        assert!(data.len() >= 2, "need at least two points");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x415);
        let mut distances = Vec::with_capacity(pairs);
        for _ in 0..pairs.max(1) {
            let a = rng.gen_range(0..data.len());
            let mut b = rng.gen_range(0..data.len());
            if a == b {
                b = (b + 1) % data.len();
            }
            distances.push(metric.distance(data.view(a), data.view(b)));
        }
        distances.sort_by(|x, y| x.total_cmp(y));
        HistogramEstimator {
            distances,
            n_data: data.len(),
        }
    }

    /// Empirical CDF of the sampled distance distribution at `tau`.
    pub fn cdf(&self, tau: f32) -> f32 {
        let below = self.distances.partition_point(|&d| d <= tau);
        below as f32 / self.distances.len() as f32
    }
}

impl CardinalityEstimator for HistogramEstimator {
    fn name(&self) -> &'static str {
        "Histogram (query-oblivious)"
    }

    fn estimate(&self, _q: VectorView<'_>, tau: f32) -> f32 {
        self.n_data as f32 * self.cdf(tau)
    }

    fn model_bytes(&self) -> usize {
        self.distances.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::paper::{DatasetSpec, PaperDataset};

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let spec = DatasetSpec {
            n_data: 400,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(71);
        let h = HistogramEstimator::build(&data, spec.metric, 2000, 71);
        let mut prev = -1.0f32;
        for i in 0..=20 {
            let tau = i as f32 / 20.0;
            let c = h.cdf(tau);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(h.cdf(1.0), 1.0, "all Hamming distances are ≤ 1");
    }

    #[test]
    fn estimate_ignores_the_query() {
        let spec = DatasetSpec {
            n_data: 300,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(72);
        let h = HistogramEstimator::build(&data, spec.metric, 1000, 72);
        let a = h.estimate(data.view(0), 0.3);
        let b = h.estimate(data.view(123), 0.3);
        assert_eq!(a, b, "the histogram baseline is query-oblivious by design");
    }

    #[test]
    fn estimates_are_calibrated_on_average() {
        // Averaged over queries, the global CDF matches the mean
        // cardinality (it errs per-query, not in aggregate).
        let spec = DatasetSpec {
            n_data: 500,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(73);
        let h = HistogramEstimator::build(&data, spec.metric, 4000, 73);
        let tau = 0.4;
        let mean_true: f32 = (0..50)
            .map(|q| {
                (0..data.len())
                    .filter(|&p| spec.metric.distance(data.view(q), data.view(p)) <= tau)
                    .count() as f32
            })
            .sum::<f32>()
            / 50.0;
        let est = h.estimate(data.view(0), tau);
        assert!(
            (est - mean_true).abs() / mean_true.max(1.0) < 0.35,
            "histogram estimate {est} should be near the mean cardinality {mean_true}"
        );
    }
}
