// Library (non-test) code must not panic on malformed input: surface
// typed errors instead. Tests may unwrap freely.
// The workspace is 100% safe Rust; `cardest-lint` (unsafe-block rule) and
// this forbid cross-check each other.
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # cardest-baselines
//!
//! The competitor estimators of Table 2 (rows 6–9), plus the estimator
//! trait every method in the workspace implements:
//!
//! * [`traits::CardinalityEstimator`] — the common interface: point
//!   estimates, join estimates (default: sum of point estimates), and the
//!   model-size accounting behind Table 5,
//! * [`sampling`] — Sampling(1%), Sampling(10%) and Sampling(equal), which
//!   counts matches on a random sample and scales by the sampling ratio,
//! * [`kernel`] — the kernel-based method of Mattig et al. (EDBT 2018) as
//!   described in §6: a Gaussian kernel per sample, cardinality as the sum
//!   of cumulative densities at τ,
//! * [`mlp`] — the basic DL model of §3.1 with MLP embeddings for
//!   `x_q`/`x_τ`/`x_D` (Table 2's "MLP"),
//! * [`cardnet`] — a substitute for CardNet (SIGMOD 2020 [53]): VAE-style
//!   query embedding plus a monotone per-threshold-bucket decomposition,
//! * [`guarded`] — the serving wrapper: input validation, `[0, |D|]`
//!   clamping, optional monotone-in-τ repair, and graceful degradation to
//!   a cheap fallback with counters.

pub mod cardnet;
pub mod guarded;
pub mod histogram;
pub mod kernel;
pub mod mlp;
pub mod sampling;
pub mod traits;

pub use cardnet::{CardNet, CardNetConfig};
pub use guarded::{GuardStats, GuardedEstimator};
pub use histogram::HistogramEstimator;
pub use kernel::KernelEstimator;
pub use mlp::{MlpConfig, MlpEstimator};
pub use sampling::SamplingEstimator;
pub use traits::{CardinalityEstimator, TrainingSet};
