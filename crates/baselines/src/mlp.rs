//! The basic DL model of §3.1 with MLP embeddings (Table 2 row 9).
//!
//! Three MLP branches learn the embeddings `z_q = E1(x_q)`,
//! `z_τ = E2(x_τ)` and `z_D = E3(x_D)` (Fig. 2); a dense + linear output
//! module `F` regresses `ln card` on their concatenation, trained with the
//! hybrid loss of Algorithm 1. `x_D` holds the distances from the query to
//! `k` retained data samples (§3.1 "we use k data samples instead of the
//! entire dataset").
//!
//! The threshold branch uses positivity-constrained weights so the τ-path
//! is monotone (§5.1); `strict_monotonic` additionally constrains the
//! output module's τ-columns and downstream weights, which makes the whole
//! estimator provably monotone in τ (checked by property tests).

use crate::traits::{CardinalityEstimator, TrainingSet};
use cardest_data::metric::Metric;
use cardest_data::vector::{VectorData, VectorView};
use cardest_nn::artifact::ArtifactError;
use cardest_nn::layers::{Dense, Layer};
use cardest_nn::metrics::decode_log_card;
use cardest_nn::net::{BranchNet, Sequential};
use cardest_nn::trainer::{train_branch_regression, TrainConfig, TrainReport};
use cardest_nn::{Activation, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Architecture hyperparameters of the basic MLP model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Number of retained data samples backing `x_D`.
    pub k_samples: usize,
    /// Query embedding width (output of `E1`).
    pub embed_q: usize,
    /// Threshold embedding width (output of `E2`).
    pub embed_t: usize,
    /// Distance embedding width (output of `E3`).
    pub embed_d: usize,
    /// Hidden width of the output module `F`.
    pub hidden: usize,
    /// Constrain the full τ-path (not just `E2`) to positive weights.
    pub strict_monotonic: bool,
    pub train: TrainConfig,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            k_samples: 64,
            embed_q: 32,
            embed_t: 8,
            embed_d: 16,
            hidden: 32,
            strict_monotonic: false,
            train: TrainConfig::default(),
        }
    }
}

/// Artifact kind tag identifying a serialized [`MlpEstimator`].
pub const MLP_ARTIFACT_KIND: &str = "cardest.mlp";

/// The trained basic-MLP estimator. Inference is immutable (`&self`): the
/// forward pass draws temporaries from a thread-local scratch pool, so one
/// trained model can be shared across serving threads.
///
/// Serializable: the artifact machinery (`cardest_nn::artifact`) persists
/// the whole estimator — weights, retained samples, metric — as one
/// checksummed payload.
#[derive(Clone, Serialize, Deserialize)]
pub struct MlpEstimator {
    net: BranchNet,
    samples: VectorData,
    metric: Metric,
    /// Dataset size at training time; estimates are capped here.
    n_data: usize,
    /// Largest threshold seen in training — the serving guard's τ bound.
    tau_seen: f32,
}

impl MlpEstimator {
    /// Builds and trains the model on a labelled training set.
    pub fn train(
        data: &VectorData,
        metric: Metric,
        training: &TrainingSet<'_>,
        cfg: &MlpConfig,
        seed: u64,
    ) -> (Self, TrainReport) {
        assert!(!training.is_empty(), "training set is empty");
        let dim = data.dim();
        // Retain k random data samples for the distance feature.
        let mut ids: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x317);
        ids.shuffle(&mut rng);
        ids.truncate(cfg.k_samples.clamp(1, data.len()));
        let samples = data.gather(&ids);

        let net = build_net(dim, samples.len(), cfg, &mut rng);
        let tau_seen = training
            .samples
            .iter()
            .map(|s| s.tau)
            .fold(0.0f32, f32::max)
            .max(1e-6);
        let mut est = MlpEstimator {
            net,
            samples,
            metric,
            n_data: data.len(),
            tau_seen,
        };

        // Precompute each training query's distance vector once.
        let n_queries = training.queries.len();
        let mut xd_cache: Vec<Vec<f32>> = Vec::with_capacity(n_queries);
        for q in 0..n_queries {
            xd_cache.push(est.distance_vector(training.queries.view(q)));
        }
        let queries = training.queries;
        let samples_list = training.samples;
        let mut qbuf: Vec<f32> = Vec::with_capacity(dim);
        let samples_ref = &est.samples;
        let _ = samples_ref; // est.samples borrowed only via xd_cache below
        let mut build = |idx: &[usize]| {
            let b = idx.len();
            let mut xq = Matrix::zeros(b, dim);
            let mut xt = Matrix::zeros(b, 1);
            let mut xd = Matrix::zeros(b, xd_cache[0].len());
            let mut cards = Vec::with_capacity(b);
            for (r, &i) in idx.iter().enumerate() {
                let s = &samples_list[i];
                queries.view(s.query).write_dense(&mut qbuf);
                xq.row_mut(r).copy_from_slice(&qbuf);
                xt.set(r, 0, s.tau);
                xd.row_mut(r).copy_from_slice(&xd_cache[s.query]);
                cards.push(s.card);
            }
            (vec![xq, xt, xd], cards)
        };
        let report =
            train_branch_regression(&mut est.net, samples_list.len(), &mut build, &cfg.train);
        (est, report)
    }

    /// Distances from `q` to the retained samples — the feature `x_D`,
    /// via the shared batched kernel.
    fn distance_vector(&self, q: VectorView<'_>) -> Vec<f32> {
        self.metric.distance_many(q, &self.samples)
    }

    /// Access to the underlying network (tests, size accounting).
    pub fn net(&self) -> &BranchNet {
        &self.net
    }

    /// Saves the trained estimator as a versioned, checksummed artifact
    /// (atomic write; see `cardest_nn::artifact` for the layout).
    pub fn save_artifact(&self, path: &std::path::Path) -> Result<(), ArtifactError> {
        let json =
            serde_json::to_string(self).map_err(|e| ArtifactError::Malformed(e.to_string()))?;
        cardest_nn::artifact::write_atomic(path, MLP_ARTIFACT_KIND, json.as_bytes())
    }

    /// Loads an artifact written by [`MlpEstimator::save_artifact`],
    /// verifying magic, format version, kind, and checksum first.
    pub fn load_artifact(path: &std::path::Path) -> Result<Self, ArtifactError> {
        let json = cardest_nn::artifact::read_json_payload(path, MLP_ARTIFACT_KIND)?;
        serde_json::from_str(&json).map_err(|e| ArtifactError::Malformed(e.to_string()))
    }
}

/// Assembles the Fig. 2 architecture.
fn build_net(dim: usize, k: usize, cfg: &MlpConfig, rng: &mut StdRng) -> BranchNet {
    let e1 = Sequential::new(vec![
        Layer::Dense(Dense::new(rng, dim, cfg.embed_q * 2, Activation::Relu)),
        Layer::Dense(Dense::new(
            rng,
            cfg.embed_q * 2,
            cfg.embed_q,
            Activation::Relu,
        )),
    ]);
    // One hidden layer, positive weights (§5.1).
    let e2 = Sequential::new(vec![
        Layer::Dense(Dense::new_nonneg(rng, 1, cfg.embed_t, Activation::Relu)),
        Layer::Dense(Dense::new_nonneg(
            rng,
            cfg.embed_t,
            cfg.embed_t,
            Activation::Relu,
        )),
    ]);
    // Two hidden layers (§5.1).
    let e3 = Sequential::new(vec![
        Layer::Dense(Dense::new(rng, k, cfg.embed_d * 2, Activation::Relu)),
        Layer::Dense(Dense::new(
            rng,
            cfg.embed_d * 2,
            cfg.embed_d,
            Activation::Relu,
        )),
        Layer::Dense(Dense::new(rng, cfg.embed_d, cfg.embed_d, Activation::Relu)),
    ]);
    let concat = cfg.embed_q + cfg.embed_t + cfg.embed_d;
    let head = if cfg.strict_monotonic {
        // τ-block columns of the first head layer non-negative, and every
        // later weight non-negative: the τ → output path stays monotone.
        let mut mask = vec![false; concat];
        for flag in mask.iter_mut().skip(cfg.embed_q).take(cfg.embed_t) {
            *flag = true;
        }
        Sequential::new(vec![
            Layer::Dense(
                Dense::new(rng, concat, cfg.hidden, Activation::Relu).with_nonneg_cols(mask),
            ),
            Layer::Dense(Dense::new_nonneg(rng, cfg.hidden, 1, Activation::Identity)),
        ])
    } else {
        Sequential::new(vec![
            Layer::Dense(Dense::new(rng, concat, cfg.hidden, Activation::Relu)),
            Layer::Dense(Dense::new(rng, cfg.hidden, 1, Activation::Identity)),
        ])
    };
    BranchNet::new(vec![e1, e2, e3], vec![dim, 1, k], head)
}

impl CardinalityEstimator for MlpEstimator {
    fn name(&self) -> &'static str {
        "MLP"
    }

    fn estimate(&self, q: VectorView<'_>, tau: f32) -> f32 {
        self.estimate_batch(&[(q, tau)])[0]
    }

    fn estimate_batch(&self, queries: &[(VectorView<'_>, f32)]) -> Vec<f32> {
        if queries.is_empty() {
            return Vec::new();
        }
        let b = queries.len();
        let dim = self.samples.dim();
        let k = self.samples.len();
        cardest_nn::scratch::with_thread_scratch(|scratch| {
            let mut xq = scratch.take(b, dim);
            let mut xt = scratch.take(b, 1);
            let mut xd = scratch.take(b, k);
            let mut qbuf: Vec<f32> = Vec::with_capacity(dim);
            for (r, &(q, tau)) in queries.iter().enumerate() {
                q.write_dense(&mut qbuf);
                xq.row_mut(r).copy_from_slice(&qbuf);
                xt.set(r, 0, tau);
                self.metric
                    .distance_many_into(q, &self.samples, xd.row_mut(r));
            }
            let pred = self.net.infer(&[&xq, &xt, &xd], scratch);
            let out = (0..b)
                .map(|r| decode_log_card(pred.get(r, 0), self.n_data as f32))
                .collect();
            for m in [xq, xt, xd, pred] {
                scratch.recycle(m);
            }
            out
        })
    }

    fn model_bytes(&self) -> usize {
        // Deployed model = parameters + the retained samples x_D needs.
        self.net.param_bytes() + self.samples.heap_bytes()
    }

    fn expected_dim(&self) -> Option<usize> {
        Some(self.samples.dim())
    }

    fn tau_bound(&self) -> Option<f32> {
        Some(self.tau_seen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::paper::{DatasetSpec, PaperDataset};
    use cardest_data::workload::SearchWorkload;
    use cardest_nn::metrics::ErrorSummary;

    fn tiny_workload() -> (VectorData, SearchWorkload, DatasetSpec) {
        let spec = DatasetSpec {
            n_data: 600,
            n_train_queries: 50,
            n_test_queries: 20,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(51);
        let w = SearchWorkload::build(&data, &spec, 51);
        (data, w, spec)
    }

    #[test]
    fn trains_and_beats_the_zero_estimator() {
        let (data, w, spec) = tiny_workload();
        let cfg = MlpConfig {
            k_samples: 32,
            train: TrainConfig {
                epochs: 18,
                ..Default::default()
            },
            ..Default::default()
        };
        let training = TrainingSet::new(&w.queries, &w.train);
        let (est, report) = MlpEstimator::train(&data, spec.metric, &training, &cfg, 51);
        assert!(report.final_loss.is_finite());

        let pairs: Vec<(f32, f32)> = w
            .test
            .iter()
            .map(|s| (est.estimate(w.queries.view(s.query), s.tau), s.card))
            .collect();
        let model = ErrorSummary::from_q_errors(&pairs);
        let zero: Vec<(f32, f32)> = w.test.iter().map(|s| (0.0, s.card)).collect();
        let zero_err = ErrorSummary::from_q_errors(&zero);
        assert!(
            model.mean < zero_err.mean,
            "MLP mean Q-error {} should beat always-zero {}",
            model.mean,
            zero_err.mean
        );
    }

    #[test]
    fn model_bytes_include_samples() {
        let (data, w, spec) = tiny_workload();
        let cfg = MlpConfig {
            k_samples: 16,
            train: TrainConfig {
                epochs: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let training = TrainingSet::new(&w.queries, &w.train);
        let (est, _) = MlpEstimator::train(&data, spec.metric, &training, &cfg, 52);
        assert!(est.model_bytes() > est.net().param_bytes());
    }

    #[test]
    fn strict_monotonic_mode_is_monotone_in_tau() {
        let (data, w, spec) = tiny_workload();
        let cfg = MlpConfig {
            k_samples: 16,
            strict_monotonic: true,
            train: TrainConfig {
                epochs: 10,
                ..Default::default()
            },
            ..Default::default()
        };
        let training = TrainingSet::new(&w.queries, &w.train);
        let (est, _) = MlpEstimator::train(&data, spec.metric, &training, &cfg, 53);
        for q in 0..5 {
            let mut prev = f32::NEG_INFINITY;
            for i in 0..=10 {
                let tau = spec.tau_max * i as f32 / 10.0;
                let e = est.estimate(w.queries.view(q), tau);
                assert!(
                    e >= prev - prev.abs() * 1e-5 - 1e-5,
                    "estimate not monotone at q={q} τ={tau}: {e} < {prev}"
                );
                prev = e;
            }
        }
    }
}
