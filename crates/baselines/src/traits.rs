//! The common estimator interface.

use cardest_data::vector::{VectorData, VectorView};
use cardest_data::workload::SearchSample;

/// Everything an estimator needs for supervised training: the materialized
/// query vectors and the labelled `(query, τ, card)` samples referring to
/// them.
pub struct TrainingSet<'a> {
    pub queries: &'a VectorData,
    pub samples: &'a [SearchSample],
}

impl<'a> TrainingSet<'a> {
    pub fn new(queries: &'a VectorData, samples: &'a [SearchSample]) -> Self {
        TrainingSet { queries, samples }
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// A similarity-query cardinality estimator.
///
/// `estimate` takes `&self`: the NN-backed estimators run an immutable
/// forward pass (`cardest_nn`'s `infer` family) with temporaries drawn from
/// thread-local scratch buffers, so one trained model can be shared across
/// serving threads (`Sync`) and queries can be batched.
pub trait CardinalityEstimator {
    /// Short display name as used in the paper's tables ("GL+", "QES", …).
    fn name(&self) -> &'static str;

    /// Estimated `card(q, τ, D)`.
    fn estimate(&self, q: VectorView<'_>, tau: f32) -> f32;

    /// Estimated cardinalities for a batch of `(query, τ)` pairs, in input
    /// order.
    ///
    /// The default maps [`CardinalityEstimator::estimate`] sequentially;
    /// NN-backed estimators override it with true `B×d` batched forward
    /// passes (one matmul per layer for the whole batch, grouped by segment
    /// in the GL family). Batched and sequential results agree within
    /// `1e-5` relative error — summation order inside a matmul row is the
    /// same either way here, but the contract leaves room for blocked
    /// kernels.
    fn estimate_batch(&self, queries: &[(VectorView<'_>, f32)]) -> Vec<f32> {
        queries
            .iter()
            .map(|&(q, tau)| self.estimate(q, tau))
            .collect()
    }

    /// Estimated `card(Q, τ, D)` for a join query set.
    ///
    /// The default evaluates every member query individually — the
    /// "estimation methods of similarity search as baselines for join
    /// estimates" of §6. The global-local join models override this with
    /// batch (sum-pooled) evaluation.
    fn estimate_join(&self, queries: &VectorData, member_ids: &[usize], tau: f32) -> f32 {
        let batch: Vec<(VectorView<'_>, f32)> =
            member_ids.iter().map(|&i| (queries.view(i), tau)).collect();
        self.estimate_batch(&batch).iter().sum()
    }

    /// Bytes the deployed model occupies (Table 5). For sampling-style
    /// methods this is the retained sample; for learned methods the
    /// parameter tensors.
    fn model_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::vector::DenseData;

    /// A stub estimator returning τ·100, to pin down the default join
    /// behaviour.
    struct Stub;

    impl CardinalityEstimator for Stub {
        fn name(&self) -> &'static str {
            "stub"
        }
        fn estimate(&self, _q: VectorView<'_>, tau: f32) -> f32 {
            tau * 100.0
        }
        fn model_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn default_join_estimate_sums_member_estimates() {
        let queries =
            VectorData::Dense(DenseData::from_flat(2, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]));
        let s = Stub;
        let est = s.estimate_join(&queries, &[0, 1, 2], 0.5);
        assert_eq!(est, 150.0);
        // Duplicated members count twice (join sets sample with
        // replacement on the scaled pools).
        let est2 = s.estimate_join(&queries, &[0, 0], 0.5);
        assert_eq!(est2, 100.0);
    }

    #[test]
    fn default_batch_estimate_matches_sequential() {
        let queries =
            VectorData::Dense(DenseData::from_flat(2, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]));
        let s = Stub;
        let batch: Vec<(VectorView<'_>, f32)> = (0..3)
            .map(|i| (queries.view(i), 0.1 * (i + 1) as f32))
            .collect();
        let got = s.estimate_batch(&batch);
        let want: Vec<f32> = batch.iter().map(|&(q, t)| s.estimate(q, t)).collect();
        assert_eq!(got, want);
    }
}
