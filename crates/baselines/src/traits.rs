//! The common estimator interface.

use cardest_data::validate::{CardestError, QueryGuard};
use cardest_data::vector::{VectorData, VectorView};
use cardest_data::workload::SearchSample;

/// Everything an estimator needs for supervised training: the materialized
/// query vectors and the labelled `(query, τ, card)` samples referring to
/// them.
pub struct TrainingSet<'a> {
    pub queries: &'a VectorData,
    pub samples: &'a [SearchSample],
}

impl<'a> TrainingSet<'a> {
    pub fn new(queries: &'a VectorData, samples: &'a [SearchSample]) -> Self {
        TrainingSet { queries, samples }
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// A similarity-query cardinality estimator.
///
/// `estimate` takes `&self`: the NN-backed estimators run an immutable
/// forward pass (`cardest_nn`'s `infer` family) with temporaries drawn from
/// thread-local scratch buffers, so one trained model can be shared across
/// serving threads (`Sync`) and queries can be batched.
pub trait CardinalityEstimator {
    /// Short display name as used in the paper's tables ("GL+", "QES", …).
    fn name(&self) -> &'static str;

    /// Estimated `card(q, τ, D)`.
    fn estimate(&self, q: VectorView<'_>, tau: f32) -> f32;

    /// Estimated cardinalities for a batch of `(query, τ)` pairs, in input
    /// order.
    ///
    /// The default maps [`CardinalityEstimator::estimate`] sequentially;
    /// NN-backed estimators override it with true `B×d` batched forward
    /// passes (one matmul per layer for the whole batch, grouped by segment
    /// in the GL family). Batched and sequential results agree within
    /// `1e-5` relative error — summation order inside a matmul row is the
    /// same either way here, but the contract leaves room for blocked
    /// kernels.
    fn estimate_batch(&self, queries: &[(VectorView<'_>, f32)]) -> Vec<f32> {
        queries
            .iter()
            .map(|&(q, tau)| self.estimate(q, tau))
            .collect()
    }

    /// Estimated `card(Q, τ, D)` for a join query set.
    ///
    /// The default evaluates every member query individually — the
    /// "estimation methods of similarity search as baselines for join
    /// estimates" of §6. The global-local join models override this with
    /// batch (sum-pooled) evaluation.
    fn estimate_join(&self, queries: &VectorData, member_ids: &[usize], tau: f32) -> f32 {
        let batch: Vec<(VectorView<'_>, f32)> =
            member_ids.iter().map(|&i| (queries.view(i), tau)).collect();
        self.estimate_batch(&batch).iter().sum()
    }

    /// Bytes the deployed model occupies (Table 5). For sampling-style
    /// methods this is the retained sample; for learned methods the
    /// parameter tensors.
    fn model_bytes(&self) -> usize;

    /// Query dimensionality this estimator was trained on, or `None` if it
    /// accepts any (e.g. a query-oblivious histogram).
    fn expected_dim(&self) -> Option<usize> {
        None
    }

    /// Largest threshold seen in training, or `None` if the estimator
    /// answers exactly for any τ (sampling-style methods).
    fn tau_bound(&self) -> Option<f32> {
        None
    }

    /// The admissible-input contract assembled from
    /// [`CardinalityEstimator::expected_dim`] and
    /// [`CardinalityEstimator::tau_bound`].
    fn guard(&self) -> QueryGuard {
        QueryGuard {
            dim: self.expected_dim(),
            tau_max: self.tau_bound(),
        }
    }

    /// Fallible twin of [`CardinalityEstimator::estimate`]: validates the
    /// input against [`CardinalityEstimator::guard`] *before* any forward
    /// pass, and checks the output is finite and non-negative after it.
    ///
    /// The infallible `estimate` keeps its historical semantics (callers
    /// that know their inputs are clean pay no validation cost); this is
    /// the entry point serving layers should use.
    fn try_estimate(&self, q: VectorView<'_>, tau: f32) -> Result<f32, CardestError> {
        self.guard().validate(0, q, tau)?;
        let est = self.estimate(q, tau);
        if !est.is_finite() || est < 0.0 {
            return Err(CardestError::NonFiniteEstimate {
                index: 0,
                value: est,
            });
        }
        Ok(est)
    }

    /// Fallible twin of [`CardinalityEstimator::estimate_batch`]. The whole
    /// batch is validated up front (rejecting before evaluation loses no
    /// work); per-entry output checks report the first offending position.
    fn try_estimate_batch(
        &self,
        queries: &[(VectorView<'_>, f32)],
    ) -> Result<Vec<f32>, CardestError> {
        self.guard().validate_batch(queries)?;
        let out = self.estimate_batch(queries);
        for (index, &value) in out.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(CardestError::NonFiniteEstimate { index, value });
            }
        }
        Ok(out)
    }
}

/// Boxed trait objects forward every method (including overrides hidden
/// behind the vtable), so wrappers like `GuardedEstimator` can hold a
/// `Box<dyn CardinalityEstimator>` without losing batched paths or guards.
impl<T: CardinalityEstimator + ?Sized> CardinalityEstimator for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn estimate(&self, q: VectorView<'_>, tau: f32) -> f32 {
        (**self).estimate(q, tau)
    }
    fn estimate_batch(&self, queries: &[(VectorView<'_>, f32)]) -> Vec<f32> {
        (**self).estimate_batch(queries)
    }
    fn estimate_join(&self, queries: &VectorData, member_ids: &[usize], tau: f32) -> f32 {
        (**self).estimate_join(queries, member_ids, tau)
    }
    fn model_bytes(&self) -> usize {
        (**self).model_bytes()
    }
    fn expected_dim(&self) -> Option<usize> {
        (**self).expected_dim()
    }
    fn tau_bound(&self) -> Option<f32> {
        (**self).tau_bound()
    }
}

/// `Arc`ed estimators forward too: a serving layer hot-swapping models can
/// share one fallback estimator across every loaded model generation
/// instead of rebuilding it per reload.
impl<T: CardinalityEstimator + ?Sized> CardinalityEstimator for std::sync::Arc<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn estimate(&self, q: VectorView<'_>, tau: f32) -> f32 {
        (**self).estimate(q, tau)
    }
    fn estimate_batch(&self, queries: &[(VectorView<'_>, f32)]) -> Vec<f32> {
        (**self).estimate_batch(queries)
    }
    fn estimate_join(&self, queries: &VectorData, member_ids: &[usize], tau: f32) -> f32 {
        (**self).estimate_join(queries, member_ids, tau)
    }
    fn model_bytes(&self) -> usize {
        (**self).model_bytes()
    }
    fn expected_dim(&self) -> Option<usize> {
        (**self).expected_dim()
    }
    fn tau_bound(&self) -> Option<f32> {
        (**self).tau_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::vector::DenseData;

    /// A stub estimator returning τ·100, to pin down the default join
    /// behaviour.
    struct Stub;

    impl CardinalityEstimator for Stub {
        fn name(&self) -> &'static str {
            "stub"
        }
        fn estimate(&self, _q: VectorView<'_>, tau: f32) -> f32 {
            tau * 100.0
        }
        fn model_bytes(&self) -> usize {
            0
        }
        fn expected_dim(&self) -> Option<usize> {
            Some(2)
        }
        fn tau_bound(&self) -> Option<f32> {
            Some(1.0)
        }
    }

    #[test]
    fn default_join_estimate_sums_member_estimates() {
        let queries =
            VectorData::Dense(DenseData::from_flat(2, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]));
        let s = Stub;
        let est = s.estimate_join(&queries, &[0, 1, 2], 0.5);
        assert_eq!(est, 150.0);
        // Duplicated members count twice (join sets sample with
        // replacement on the scaled pools).
        let est2 = s.estimate_join(&queries, &[0, 0], 0.5);
        assert_eq!(est2, 100.0);
    }

    #[test]
    fn default_batch_estimate_matches_sequential() {
        let queries =
            VectorData::Dense(DenseData::from_flat(2, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]));
        let s = Stub;
        let batch: Vec<(VectorView<'_>, f32)> = (0..3)
            .map(|i| (queries.view(i), 0.1 * (i + 1) as f32))
            .collect();
        let got = s.estimate_batch(&batch);
        let want: Vec<f32> = batch.iter().map(|&(q, t)| s.estimate(q, t)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn try_estimate_validates_before_and_after_the_forward_pass() {
        use cardest_data::validate::CardestError;
        let s = Stub;
        let ok = [0.0_f32, 1.0];
        assert_eq!(s.try_estimate(VectorView::Dense(&ok), 0.5), Ok(50.0));
        // Wrong dim, NaN component, τ misuse — each maps to its variant.
        assert!(matches!(
            s.try_estimate(VectorView::Dense(&[0.0; 3]), 0.5),
            Err(CardestError::DimensionMismatch {
                expected: 2,
                got: 3,
                ..
            })
        ));
        assert!(matches!(
            s.try_estimate(VectorView::Dense(&[f32::NAN, 0.0]), 0.5),
            Err(CardestError::NonFiniteQuery { .. })
        ));
        assert!(matches!(
            s.try_estimate(VectorView::Dense(&ok), -1.0),
            Err(CardestError::NegativeTau { .. })
        ));
        assert!(matches!(
            s.try_estimate(VectorView::Dense(&ok), 2.0),
            Err(CardestError::TauOutOfRange { .. })
        ));
        // A NaN τ inside range would poison the stub's output, but the
        // guard rejects it first.
        assert!(matches!(
            s.try_estimate(VectorView::Dense(&ok), f32::NAN),
            Err(CardestError::NonFiniteTau { .. })
        ));
    }

    #[test]
    fn try_estimate_batch_reports_the_offending_entry() {
        use cardest_data::validate::CardestError;
        let s = Stub;
        let ok = [0.0_f32, 1.0];
        let batch = [(VectorView::Dense(&ok), 0.1), (VectorView::Dense(&ok), 5.0)];
        let err = s.try_estimate_batch(&batch).unwrap_err();
        assert!(matches!(err, CardestError::TauOutOfRange { index: 1, .. }));
        let clean = [(VectorView::Dense(&ok), 0.1), (VectorView::Dense(&ok), 0.2)];
        assert_eq!(s.try_estimate_batch(&clean), Ok(vec![10.0, 20.0]));
    }

    #[test]
    fn arced_estimators_forward_guards_through_the_vtable() {
        let arced: std::sync::Arc<dyn CardinalityEstimator + Send + Sync> =
            std::sync::Arc::new(Stub);
        assert_eq!(arced.expected_dim(), Some(2));
        assert_eq!(arced.tau_bound(), Some(1.0));
        assert_eq!(
            arced.try_estimate(VectorView::Dense(&[0.0; 2]), 0.5),
            Ok(50.0)
        );
        assert!(arced
            .try_estimate(VectorView::Dense(&[0.0; 3]), 0.5)
            .is_err());
    }

    #[test]
    fn boxed_estimators_forward_guards_through_the_vtable() {
        let boxed: Box<dyn CardinalityEstimator> = Box::new(Stub);
        assert_eq!(boxed.expected_dim(), Some(2));
        assert_eq!(boxed.tau_bound(), Some(1.0));
        assert!(boxed
            .try_estimate(VectorView::Dense(&[0.0; 3]), 0.5)
            .is_err());
        assert_eq!(
            boxed.try_estimate(VectorView::Dense(&[0.0; 2]), 0.5),
            Ok(50.0)
        );
    }
}
