// Library (non-test) code must not panic on malformed input: surface
// typed errors instead. Tests may unwrap freely.
// The workspace is 100% safe Rust; `cardest-lint` (unsafe-block rule) and
// this forbid cross-check each other.
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # cardest — learned cardinality estimation for similarity queries
//!
//! A from-scratch Rust reproduction of *Learned Cardinality Estimation for
//! Similarity Queries* (Ji Sun, Guoliang Li, Nan Tang — SIGMOD 2021).
//!
//! Given a dataset `D` of vectors under a similarity metric, the library
//! estimates `card(q, τ, D)` — how many points lie within distance `τ` of
//! a query `q` — and `card(Q, τ, D)` for join query sets, using the
//! paper's query-segmentation CNNs and global-local model framework.
//!
//! ## Quickstart
//!
//! ```
//! use cardest::prelude::*;
//!
//! // A small synthetic dataset (64-bit hash codes under Hamming).
//! let spec = DatasetSpec {
//!     n_data: 600,
//!     n_train_queries: 40,
//!     n_test_queries: 10,
//!     ..PaperDataset::ImageNet.spec()
//! };
//! let data = spec.generate(7);
//! let workload = SearchWorkload::build(&data, &spec, 7);
//!
//! // Train a GL-CNN estimator (global-local framework, CNN embeddings).
//! let mut cfg = GlConfig::for_variant(GlVariant::GlCnn);
//! cfg.n_segments = 6;
//! cfg.local_train.epochs = 5;
//! cfg.global_train.epochs = 5;
//! let training = TrainingSet::new(&workload.queries, &workload.train);
//! let model =
//!     GlEstimator::train(&data, spec.metric, &training, &workload.table, &cfg);
//!
//! // Estimate the cardinality of a similarity search. Trained models are
//! // immutable at serving time (`&self`) and `Sync`.
//! let sample = &workload.test[0];
//! let estimate = model.estimate(workload.queries.view(sample.query), sample.tau);
//! assert!(estimate.is_finite() && estimate >= 0.0);
//!
//! // Batched estimation: one grouped forward pass per selected local
//! // model instead of one pass per query.
//! let batch: Vec<(VectorView<'_>, f32)> = workload
//!     .test
//!     .iter()
//!     .map(|s| (workload.queries.view(s.query), s.tau))
//!     .collect();
//! let estimates = model.estimate_batch(&batch);
//! assert_eq!(estimates.len(), workload.test.len());
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`nn`] | minimal NN library: layers, losses, Adam, training loops |
//! | [`data`] | vectors, metrics, synthetic datasets, workloads, ground truth |
//! | [`cluster`] | PCA, k-means, DBSCAN, LSH, the segmentation pipeline |
//! | [`index`] | exact pivot-based metric index (SimSelect stand-in) |
//! | [`baselines`] | Sampling, Kernel-based, MLP, CardNet substitute, guarded serving |
//! | [`core`] | QES, the global-local family, joins, tuning, updates |

pub use cardest_baselines as baselines;
pub use cardest_cluster as cluster;
pub use cardest_core as core;
pub use cardest_data as data;
pub use cardest_index as index;
pub use cardest_nn as nn;

/// The most common imports in one place.
pub mod prelude {
    pub use cardest_baselines::traits::{CardinalityEstimator, TrainingSet};
    pub use cardest_baselines::{
        CardNet, CardNetConfig, GuardStats, GuardedEstimator, HistogramEstimator, KernelEstimator,
        MlpConfig, MlpEstimator, SamplingEstimator,
    };
    pub use cardest_cluster::segmentation::{Segmentation, SegmentationConfig, SegmentationMethod};
    pub use cardest_core::gl::{GlConfig, GlEstimator, GlVariant};
    pub use cardest_core::join::{JoinConfig, JoinEstimator, JoinVariant};
    pub use cardest_core::qes::{QesConfig, QesEstimator};
    pub use cardest_core::update::{UpdatableGl, UpdateConfig};
    pub use cardest_data::metric::Metric;
    pub use cardest_data::paper::{paper_datasets, DatasetSpec, PaperDataset};
    pub use cardest_data::validate::{CardestError, QueryGuard};
    pub use cardest_data::vector::{BinaryData, DenseData, VectorData, VectorView};
    pub use cardest_data::workload::{JoinSet, JoinWorkload, SearchSample, SearchWorkload};
    pub use cardest_index::PivotIndex;
    pub use cardest_nn::artifact::ArtifactError;
    pub use cardest_nn::metrics::{decode_log_card, mape, q_error, ErrorSummary};
    pub use cardest_nn::trainer::TrainConfig;
}
