//! Near-duplicate image triage with join cardinality estimates.
//!
//! Scenario: a photo service receives upload batches and wants to know —
//! *before* running an expensive exact dedup pass — roughly how many
//! near-duplicate pairs a batch has against the catalogue (images are
//! 64-bit perceptual hash codes; near-duplicate ⇔ small Hamming
//! distance). That is exactly a similarity-join cardinality
//! `card(Q, τ, D)` (§4 of the paper); batches whose estimate is high get
//! routed to the dedup pipeline.
//!
//! ```sh
//! cargo run --release -p cardest --example image_dedup
//! ```

use cardest::prelude::*;

fn main() {
    // Catalogue of hash codes (ImageNET stand-in generator).
    let spec = DatasetSpec {
        n_data: 4000,
        n_train_queries: 160,
        n_test_queries: 60,
        ..PaperDataset::ImageNet.spec()
    };
    let data = spec.generate(11);
    let workload = SearchWorkload::build(&data, &spec, 11);
    let joins = JoinWorkload::build(&workload, 150, 8, 11);

    // Train GLJoin: a global-local model transferred to the join setting
    // with sum-pooled batch embeddings.
    let mut cfg = JoinConfig::for_variant(JoinVariant::GlJoin);
    cfg.finetune_epochs = 5;
    cfg.base.n_segments = 8;
    cfg.base.local_train.epochs = 30;
    cfg.base.local_train.learning_rate = 2e-3;
    cfg.base.global_train.epochs = 25;
    cfg.base.global_train.learning_rate = 2e-3;
    let training = TrainingSet::new(&workload.queries, &workload.train);
    let model = JoinEstimator::train(
        &data,
        spec.metric,
        &training,
        &workload.table,
        &joins.train,
        &cfg,
    );

    // Triage incoming upload batches: estimate the duplicate-pair count
    // per batch, send suspicious batches to exact dedup.
    let dedup_threshold = 50.0;
    let mut routed = 0usize;
    let mut correctly_routed = 0usize;
    for batch in joins.test_buckets.iter().flatten() {
        let est = model.estimate_join_batched(&workload.queries, &batch.query_ids, batch.tau);
        let flagged = est > dedup_threshold;
        let truly_heavy = batch.card > dedup_threshold;
        routed += usize::from(flagged);
        correctly_routed += usize::from(flagged == truly_heavy);
        println!(
            "batch of {:>3} uploads (tau {:.2}): estimated {est:>8.0} duplicate pairs (true {:>6.0}) → {}",
            batch.query_ids.len(),
            batch.tau,
            batch.card,
            if flagged { "DEDUP" } else { "pass" }
        );
    }
    let total: usize = joins.test_buckets.iter().map(Vec::len).sum();
    println!(
        "\nrouted {routed}/{total} batches to dedup; routing agreed with ground truth on {correctly_routed}/{total}"
    );
}
