//! Quickstart: train a global-local estimator on a synthetic dataset and
//! compare its estimates against exact cardinalities.
//!
//! ```sh
//! cargo run --release -p cardest --example quickstart
//! ```

use cardest::prelude::*;

fn main() {
    // 1. Generate a synthetic stand-in for the paper's ImageNET dataset:
    //    64-bit HashNet-style codes under normalized Hamming distance.
    let spec = DatasetSpec {
        n_data: 4000,
        n_train_queries: 200,
        n_test_queries: 50,
        ..PaperDataset::ImageNet.spec()
    };
    let data = spec.generate(42);
    println!(
        "dataset: {} vectors, {} dims, {:?}",
        data.len(),
        data.dim(),
        spec.metric
    );

    // 2. Build the labelled workload: random data points as queries, 10
    //    thresholds per query chosen by selectivity, exact cardinalities.
    let workload = SearchWorkload::build(&data, &spec, 42);
    println!(
        "workload: {} training samples, {} test samples",
        workload.train.len(),
        workload.test.len()
    );

    // 3. Train GL-CNN: PCA+k-means data segmentation, one CNN local model
    //    per segment, and a global model that picks which locals to run.
    let mut cfg = GlConfig::for_variant(GlVariant::GlCnn);
    cfg.n_segments = 8;
    cfg.local_train.epochs = 35;
    cfg.local_train.learning_rate = 2e-3;
    cfg.global_train.epochs = 30;
    cfg.global_train.learning_rate = 2e-3;
    let training = TrainingSet::new(&workload.queries, &workload.train);
    let model = GlEstimator::train(&data, spec.metric, &training, &workload.table, &cfg);
    println!(
        "model: {} segments, {:.1} KB of parameters",
        model.n_segments(),
        model.model_bytes() as f64 / 1024.0
    );

    // 4. Estimate — and check against the exact answer.
    let mut q_errors = Vec::new();
    for sample in &workload.test {
        let est = model.estimate(workload.queries.view(sample.query), sample.tau);
        q_errors.push(q_error(est, sample.card));
    }
    let summary = ErrorSummary::from_errors(&q_errors);
    println!(
        "test Q-error: mean {:.2}, median {:.2}, p95 {:.2}, max {:.1}",
        summary.mean, summary.median, summary.p95, summary.max
    );

    // 5. Single ad-hoc query: how many near-duplicates does point 0 have
    //    within Hamming distance 0.15?
    let est = model.estimate(data.view(0), 0.15);
    let exact = (0..data.len())
        .filter(|&p| spec.metric.distance(data.view(0), data.view(p)) <= 0.15)
        .count();
    println!("ad-hoc query: estimated {est:.0} vs exact {exact}");
}
