//! Cardinality-guided plan selection — the database-optimizer use case
//! that motivates the paper (§1: "database optimizations").
//!
//! A query planner must choose how to execute a similarity predicate
//! `dis(q, x) ≤ τ`:
//! * **index scan** — probe the exact pivot index; fast when few points
//!   match, but its pruning collapses for high-selectivity predicates,
//! * **full scan** — linear pass; cost is flat regardless of selectivity.
//!
//! The planner asks the learned estimator for `card(q, τ)` and picks the
//! plan a classic cost model prefers. This example measures how often the
//! estimate-driven choice matches the oracle (true-cardinality) choice.
//!
//! ```sh
//! cargo run --release -p cardest --example query_optimizer
//! ```

use cardest::prelude::*;

/// Simple cost model: an index scan touches ~(groups + matches·C) entries,
/// a full scan touches every point. Below the crossover selectivity the
/// index wins; the 0.4% crossover matches a pivot index whose per-match
/// overhead is high relative to a tight sequential scan.
fn prefer_index(estimated_card: f32, n_data: usize) -> bool {
    estimated_card < 0.004 * n_data as f32
}

fn main() {
    let spec = DatasetSpec {
        n_data: 5000,
        n_train_queries: 200,
        n_test_queries: 60,
        ..PaperDataset::GloVe300.spec()
    };
    let data = spec.generate(7);
    let workload = SearchWorkload::build(&data, &spec, 7);

    // Train the QES estimator (small + fast: the planner sits on the hot
    // path, and Table 6 shows QES estimates in ~10 µs).
    let mut qes_cfg = QesConfig::default();
    qes_cfg.train.epochs = 25;
    let training = TrainingSet::new(&workload.queries, &workload.train);
    let (estimator, _) = QesEstimator::train(&data, spec.metric, &training, &qes_cfg, 7);

    // The exact index both serves as the "index scan" plan and gives us
    // the oracle cardinalities.
    let index = PivotIndex::build(&data, spec.metric, 24, 7);

    let mut agree = 0usize;
    let mut total = 0usize;
    let mut est_wins_reported = 0usize;
    for sample in &workload.test {
        let q = workload.queries.view(sample.query);
        let est = estimator.estimate(q, sample.tau);
        let plan_by_estimate = prefer_index(est, data.len());
        let plan_by_oracle = prefer_index(sample.card, data.len());
        agree += usize::from(plan_by_estimate == plan_by_oracle);
        est_wins_reported += usize::from(plan_by_estimate);
        total += 1;

        // Execute the chosen plan (index path shown; a full scan would be
        // `data` iteration).
        if plan_by_estimate {
            let (_, stats) = index.range_count_with_stats(&data, q, sample.tau);
            assert!(stats.distance_evals <= data.len() + index.n_groups());
        }
    }
    println!(
        "planner agreement with oracle: {agree}/{total} ({:.0}%), index plan chosen {est_wins_reported} times",
        100.0 * agree as f64 / total as f64
    );

    // Show one concrete decision.
    let sample = &workload.test[0];
    let q = workload.queries.view(sample.query);
    let est = estimator.estimate(q, sample.tau);
    println!(
        "example predicate: tau={:.3}, estimated {est:.0} matches (true {:.0}) → {}",
        sample.tau,
        sample.card,
        if prefer_index(est, data.len()) {
            "index scan"
        } else {
            "full scan"
        }
    );
}
