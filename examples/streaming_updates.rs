//! Keeping a deployed estimator fresh under a stream of inserts (§5.3).
//!
//! Scenario: a word-embedding catalogue (GloVe stand-in) grows over time.
//! Retraining the estimator from scratch takes minutes-to-hours at paper
//! scale, while the paper's incremental path — route the new points to
//! their nearest data segment, patch the cached labels, fine-tune only the
//! affected local models plus the global model — takes seconds and keeps
//! the Q-error flat (Exp-11 / Fig. 15).
//!
//! ```sh
//! cargo run --release -p cardest --example streaming_updates
//! ```

use cardest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let spec = DatasetSpec {
        n_data: 4000,
        n_train_queries: 160,
        n_test_queries: 40,
        ..PaperDataset::GloVe300.spec()
    };
    let data = spec.generate(23);
    let workload = SearchWorkload::build(&data, &spec, 23);

    let mut cfg = GlConfig::for_variant(GlVariant::GlCnn);
    cfg.n_segments = 8;
    cfg.local_train.epochs = 30;
    cfg.local_train.learning_rate = 2e-3;
    cfg.global_train.epochs = 25;
    cfg.global_train.learning_rate = 2e-3;
    let training = TrainingSet::new(&workload.queries, &workload.train);
    let model = GlEstimator::train(&data, spec.metric, &training, &workload.table, &cfg);

    // Wrap the model for updates: it owns the evolving dataset, the
    // labelled workload, and the fine-tuning schedule.
    let all_queries: Vec<usize> = (0..workload.queries.len()).collect();
    let mut live = UpdatableGl::new(
        data.clone(),
        spec.metric,
        model,
        workload.queries.gather(&all_queries),
        workload.train.clone(),
        workload.test.clone(),
        &workload.table,
        UpdateConfig::default(),
    );

    println!(
        "before updates: mean test Q-error {:.2}",
        live.mean_test_q_error()
    );

    // Stream 10 insert operations of 10 records each (new points resemble
    // catalogue entries, as in Exp-11's GloVe insertions).
    let mut rng = StdRng::seed_from_u64(23);
    for op in 1..=10 {
        let ids: Vec<usize> = (0..10).map(|_| rng.gen_range(0..data.len())).collect();
        let points = live.data().gather(&ids);
        let affected = live.insert(&points, true);
        println!(
            "op {op:>2}: inserted 10 records into segments {:?}; mean test Q-error {:.2}",
            affected,
            live.mean_test_q_error()
        );
    }
    println!(
        "dataset grew to {} records; the estimator stayed fresh without a full retrain",
        live.dataset_len()
    );
}
