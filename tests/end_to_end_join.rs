//! End-to-end integration tests for similarity-join estimation: workload
//! construction, model transfer, mask-based routing and sum pooling.

use cardest::prelude::*;
use cardest_nn::trainer::TrainConfig;

fn setup(seed: u64) -> (DatasetSpec, VectorData, SearchWorkload, JoinWorkload) {
    let spec = DatasetSpec {
        n_data: 650,
        n_train_queries: 55,
        n_test_queries: 20,
        ..PaperDataset::ImageNet.spec()
    };
    let data = spec.generate(seed);
    let w = SearchWorkload::build(&data, &spec, seed);
    let j = JoinWorkload::build(&w, 30, 6, seed);
    (spec, data, w, j)
}

fn fast_join(variant: JoinVariant) -> JoinConfig {
    let mut cfg = JoinConfig::for_variant(variant);
    cfg.base.n_segments = 6;
    cfg.base.local_train = TrainConfig {
        epochs: 8,
        batch_size: 64,
        ..Default::default()
    };
    cfg.base.global_train = TrainConfig {
        epochs: 10,
        batch_size: 64,
        ..Default::default()
    };
    cfg.base.tuning = cardest::core::tuning::TuningConfig::fast();
    cfg.base.tuning_segments = 1;
    cfg.qes.train = TrainConfig {
        epochs: 8,
        ..Default::default()
    };
    cfg
}

/// Batched (sum-pooled) join estimation beats always answering zero, for
/// every variant.
#[test]
#[ignore = "heavyweight: trains two full join estimators; run with `cargo test -- --ignored`"]
fn join_variants_beat_zero_baseline() {
    let (spec, data, w, j) = setup(301);
    let training = TrainingSet::new(&w.queries, &w.train);
    let zero_err = {
        let errs: Vec<f32> = j.test_buckets[0]
            .iter()
            .map(|s| q_error(0.0, s.card))
            .collect();
        ErrorSummary::from_errors(&errs).mean
    };
    for variant in [JoinVariant::GlJoin, JoinVariant::CnnJoin] {
        let est = JoinEstimator::train(
            &data,
            spec.metric,
            &training,
            &w.table,
            &j.train,
            &fast_join(variant),
        );
        let errs: Vec<f32> = j.test_buckets[0]
            .iter()
            .map(|s| {
                q_error(
                    est.estimate_join_batched(&w.queries, &s.query_ids, s.tau),
                    s.card,
                )
            })
            .collect();
        let err = ErrorSummary::from_errors(&errs).mean;
        assert!(
            err < zero_err,
            "{variant:?}: mean Q-error {err} vs zero baseline {zero_err}"
        );
    }
}

/// Transferring a trained search model into the join setting preserves
/// the model (no panic, finite outputs) and the estimator reports its
/// join-variant name.
#[test]
fn search_model_transfers_to_join_setting() {
    let (spec, data, w, j) = setup(302);
    let training = TrainingSet::new(&w.queries, &w.train);
    let mut gl_cfg = GlConfig::for_variant(GlVariant::GlCnn);
    gl_cfg.n_segments = 6;
    gl_cfg.local_train.epochs = 8;
    gl_cfg.global_train.epochs = 10;
    let gl = GlEstimator::train(&data, spec.metric, &training, &w.table, &gl_cfg);
    let join = JoinEstimator::from_search_model(
        gl,
        &w.queries,
        &j.train,
        &fast_join(JoinVariant::GlJoinPlus),
    );
    assert_eq!(join.name(), "GLJoin+");
    for set in j.test_buckets.iter().flatten().take(6) {
        let e = join.estimate_join_batched(&w.queries, &set.query_ids, set.tau);
        assert!(e.is_finite() && e >= 0.0);
    }
    // An empty join set estimates zero pairs.
    assert_eq!(join.estimate_join_batched(&w.queries, &[], 0.2), 0.0);
}

/// The per-query fallback (`estimate_join` default on a search estimator)
/// equals the sum of its single-query estimates — the baseline semantics
/// the paper compares batch evaluation against.
#[test]
fn per_query_join_baseline_is_a_sum() {
    let (spec, data, w, _) = setup(304);
    let training = TrainingSet::new(&w.queries, &w.train);
    let (qes, _) = QesEstimator::train(
        &data,
        spec.metric,
        &training,
        &QesConfig {
            train: TrainConfig {
                epochs: 3,
                ..Default::default()
            },
            ..Default::default()
        },
        304,
    );
    let ids = [0usize, 3, 5];
    let tau = 0.2;
    let joint = qes.estimate_join(&w.queries, &ids, tau);
    let manual: f32 = ids
        .iter()
        .map(|&i| qes.estimate(w.queries.view(i), tau))
        .sum();
    assert!((joint - manual).abs() <= 1e-3 * manual.abs().max(1.0));
}
