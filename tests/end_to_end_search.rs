//! End-to-end integration tests for similarity-search estimation,
//! spanning data generation → workload labelling → segmentation →
//! training → estimation across all the workspace crates.

use cardest::prelude::*;
use cardest_nn::trainer::TrainConfig;

fn small_spec(dataset: PaperDataset, seed: u64) -> (DatasetSpec, VectorData, SearchWorkload) {
    let spec = DatasetSpec {
        n_data: 650,
        n_train_queries: 55,
        n_test_queries: 20,
        ..dataset.spec()
    };
    let data = spec.generate(seed);
    let w = SearchWorkload::build(&data, &spec, seed);
    (spec, data, w)
}

fn fast_gl(variant: GlVariant) -> GlConfig {
    let mut cfg = GlConfig::for_variant(variant);
    cfg.n_segments = 6;
    cfg.local_train = TrainConfig {
        epochs: 10,
        batch_size: 64,
        ..Default::default()
    };
    cfg.global_train = TrainConfig {
        epochs: 12,
        batch_size: 64,
        ..Default::default()
    };
    cfg.tuning = cardest::core::tuning::TuningConfig::fast();
    cfg.tuning_segments = 1;
    cfg
}

fn mean_q<E: CardinalityEstimator>(est: &mut E, w: &SearchWorkload) -> f32 {
    let errs: Vec<f32> = w
        .test
        .iter()
        .map(|s| q_error(est.estimate(w.queries.view(s.query), s.tau), s.card))
        .collect();
    ErrorSummary::from_errors(&errs).mean
}

/// The headline claim at miniature scale: on a clustered dataset the
/// global-local model beats a memory-equal random sample.
#[test]
fn gl_beats_equal_size_sampling_on_clustered_data() {
    let (spec, data, w) = small_spec(PaperDataset::ImageNet, 201);
    let training = TrainingSet::new(&w.queries, &w.train);
    let mut gl = GlEstimator::train(
        &data,
        spec.metric,
        &training,
        &w.table,
        &fast_gl(GlVariant::GlCnn),
    );
    let mut sampling =
        SamplingEstimator::with_count(&data, spec.metric, 20, 201, "Sampling (tiny)");
    let gl_err = mean_q(&mut gl, &w);
    let s_err = mean_q(&mut sampling, &w);
    assert!(
        gl_err < s_err,
        "GL-CNN ({gl_err}) should beat a tiny sample ({s_err}) on low-selectivity queries"
    );
}

/// Every estimator must produce finite, non-negative estimates on every
/// dataset modality (dense + binary, all metrics).
#[test]
#[ignore = "heavyweight: trains three learned estimators on four dataset modalities; run with `cargo test -- --ignored`"]
fn all_estimators_are_finite_on_all_modalities() {
    for (dataset, seed) in [
        (PaperDataset::Bms, 211u64),   // Jaccard / sparse binary
        (PaperDataset::GloVe300, 212), // Angular / dense
        (PaperDataset::YouTube, 213),  // L2 / dense
        (PaperDataset::ImageNet, 214), // Hamming / binary
    ] {
        let (spec, data, w) = small_spec(dataset, seed);
        let training = TrainingSet::new(&w.queries, &w.train);
        let quick = TrainConfig {
            epochs: 3,
            ..Default::default()
        };

        let mut estimators: Vec<Box<dyn CardinalityEstimator>> = vec![
            Box::new(
                QesEstimator::train(
                    &data,
                    spec.metric,
                    &training,
                    &QesConfig {
                        train: quick,
                        ..Default::default()
                    },
                    seed,
                )
                .0,
            ),
            Box::new(
                MlpEstimator::train(
                    &data,
                    spec.metric,
                    &training,
                    &MlpConfig {
                        train: quick,
                        ..Default::default()
                    },
                    seed,
                )
                .0,
            ),
            Box::new(
                CardNet::train(
                    &training,
                    spec.tau_max,
                    &CardNetConfig {
                        train: quick,
                        ..Default::default()
                    },
                    seed,
                )
                .0,
            ),
            Box::new(SamplingEstimator::with_ratio(
                &data,
                spec.metric,
                0.1,
                seed,
                "S10",
            )),
            Box::new(KernelEstimator::new(&data, spec.metric, 0.05, seed)),
        ];
        for est in &mut estimators {
            for s in w.test.iter().take(20) {
                let e = est.estimate(w.queries.view(s.query), s.tau);
                assert!(
                    e.is_finite() && e >= 0.0,
                    "{} produced {e} on {dataset:?}",
                    est.name()
                );
            }
        }
    }
}

/// The learned methods should track threshold growth: mean estimate at a
/// large τ must exceed the mean estimate at a tiny τ.
#[test]
fn estimates_grow_with_threshold_on_average() {
    let (spec, data, w) = small_spec(PaperDataset::ImageNet, 221);
    let training = TrainingSet::new(&w.queries, &w.train);
    let (qes, _) = QesEstimator::train(
        &data,
        spec.metric,
        &training,
        &QesConfig {
            train: TrainConfig {
                epochs: 15,
                ..Default::default()
            },
            ..Default::default()
        },
        221,
    );
    let (mut lo_sum, mut hi_sum) = (0.0f32, 0.0f32);
    for q in 0..20 {
        lo_sum += qes.estimate(w.queries.view(q), 0.01);
        hi_sum += qes.estimate(w.queries.view(q), spec.tau_max);
    }
    assert!(
        hi_sum > lo_sum,
        "mean estimate at tau_max ({hi_sum}) must exceed tau≈0 ({lo_sum})"
    );
}

/// Training is deterministic: same seed, same model, same estimates.
#[test]
fn training_is_deterministic_per_seed() {
    let (spec, data, w) = small_spec(PaperDataset::ImageNet, 231);
    let training = TrainingSet::new(&w.queries, &w.train);
    let cfg = QesConfig {
        train: TrainConfig {
            epochs: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let (a, _) = QesEstimator::train(&data, spec.metric, &training, &cfg, 231);
    let (b, _) = QesEstimator::train(&data, spec.metric, &training, &cfg, 231);
    for s in w.test.iter().take(10) {
        let ea = a.estimate(w.queries.view(s.query), s.tau);
        let eb = b.estimate(w.queries.view(s.query), s.tau);
        assert_eq!(ea, eb);
    }
}

/// A trained GL estimator serializes to JSON and the restored model
/// produces bit-identical estimates (the deployment path: the paper
/// trains offline and ships parameters to a serving engine).
#[test]
fn gl_model_roundtrips_through_json() {
    let (spec, data, w) = small_spec(PaperDataset::ImageNet, 251);
    let training = TrainingSet::new(&w.queries, &w.train);
    let mut cfg = fast_gl(GlVariant::GlCnn);
    cfg.local_train.epochs = 4;
    cfg.global_train.epochs = 4;
    let original = GlEstimator::train(&data, spec.metric, &training, &w.table, &cfg);
    let json = original.to_json().expect("serialize");
    let restored = GlEstimator::from_json(&json).expect("deserialize");
    for s in w.test.iter().take(15) {
        let a = original.estimate(w.queries.view(s.query), s.tau);
        let b = restored.estimate(w.queries.view(s.query), s.tau);
        assert_eq!(a, b, "restored model diverged at tau={}", s.tau);
    }
}

/// The exact index agrees with the workload's ground-truth labels — two
/// independent implementations of `card(q, τ, D)`.
#[test]
fn pivot_index_agrees_with_ground_truth_labels() {
    let (spec, data, w) = small_spec(PaperDataset::GloVe300, 241);
    let index = PivotIndex::build(&data, spec.metric, 10, 241);
    for s in w.test.iter().take(40) {
        let exact = index.range_count(&data, w.queries.view(s.query), s.tau);
        assert_eq!(
            exact as f32, s.card,
            "index disagrees with labels at tau={}",
            s.tau
        );
    }
}
