//! Cross-method behavioural invariants: three independent implementations
//! of `card(q, τ, D)` must agree where they are exact, and the known
//! weaknesses of each baseline must show up where the paper says they do.

use cardest::baselines::HistogramEstimator;
use cardest::prelude::*;

fn dataset(seed: u64) -> (DatasetSpec, VectorData) {
    let spec = DatasetSpec {
        n_data: 600,
        ..PaperDataset::ImageNet.spec()
    };
    (spec, spec.generate(seed))
}

/// Sampling at ratio 1.0, the pivot index and brute force all agree.
#[test]
fn exact_paths_agree() {
    let (spec, data) = dataset(501);
    let index = PivotIndex::build(&data, spec.metric, 10, 501);
    let full = SamplingEstimator::with_ratio(&data, spec.metric, 1.0, 501, "Sampling (100%)");
    for q in (0..data.len()).step_by(89) {
        for tau in [0.1f32, 0.25, 0.4] {
            let brute = (0..data.len())
                .filter(|&p| spec.metric.distance(data.view(q), data.view(p)) <= tau)
                .count() as f32;
            assert_eq!(index.range_count(&data, data.view(q), tau) as f32, brute);
            assert_eq!(full.estimate(data.view(q), tau), brute);
        }
    }
}

/// The query-oblivious histogram is calibrated in aggregate but loses to
/// a query-aware learned estimator on per-query error over clustered data
/// — the motivation for learning the query embedding at all.
#[test]
fn query_awareness_beats_global_histogram() {
    let spec = DatasetSpec {
        n_data: 900,
        n_train_queries: 70,
        n_test_queries: 20,
        ..PaperDataset::ImageNet.spec()
    };
    let data = spec.generate(502);
    let w = SearchWorkload::build(&data, &spec, 502);
    let mut hist = HistogramEstimator::build(&data, spec.metric, 4000, 502);
    let mut cfg = QesConfig::default();
    cfg.train.epochs = 20;
    let training = TrainingSet::new(&w.queries, &w.train);
    let (mut qes, _) = QesEstimator::train(&data, spec.metric, &training, &cfg, 502);

    let err = |est: &mut dyn CardinalityEstimator| -> f32 {
        let errs: Vec<f32> = w
            .test
            .iter()
            .map(|s| q_error(est.estimate(w.queries.view(s.query), s.tau), s.card))
            .collect();
        ErrorSummary::from_errors(&errs).mean
    };
    let h = err(&mut hist);
    let q = err(&mut qes);
    assert!(
        q < h,
        "query-aware QES ({q}) must beat the global histogram ({h})"
    );
}

/// Kernel estimates dominate plain same-size sampling near the 0-tuple
/// regime (the kernel's raison d'être per §6).
#[test]
fn kernel_never_returns_hard_zero_where_sampling_does() {
    let (spec, data) = dataset(503);
    let kernel = KernelEstimator::new(&data, spec.metric, 0.03, 503);
    let sampling = SamplingEstimator::with_ratio(&data, spec.metric, 0.03, 503, "Sampling (3%)");
    let mut zero_sampling = 0usize;
    let mut zero_kernel = 0usize;
    for q in (0..data.len()).step_by(23) {
        let tau = 0.05; // very selective
        if sampling.estimate(data.view(q), tau) == 0.0 {
            zero_sampling += 1;
            if kernel.estimate(data.view(q), tau) == 0.0 {
                zero_kernel += 1;
            }
        }
    }
    assert!(zero_sampling > 0, "expected the 0-tuple regime to appear");
    assert!(
        zero_kernel < zero_sampling,
        "kernel smoothing should avoid some hard zeros ({zero_kernel} vs {zero_sampling})"
    );
}

/// Every baseline's model_bytes is consistent with what it retains.
#[test]
fn model_size_accounting_is_sane() {
    let (spec, data) = dataset(504);
    let s10 = SamplingEstimator::with_ratio(&data, spec.metric, 0.10, 504, "Sampling (10%)");
    let s1 = SamplingEstimator::with_ratio(&data, spec.metric, 0.01, 504, "Sampling (1%)");
    assert!(s10.model_bytes() > s1.model_bytes());
    let hist = HistogramEstimator::build(&data, spec.metric, 1000, 504);
    assert_eq!(hist.model_bytes(), 1000 * 4);
}
