//! Serde round-trips of the persistent artifacts: datasets, workload
//! samples, segmentations and network layers. The paper's deployment story
//! (train in PyTorch, copy parameters into a C++ engine) maps here to
//! serde round-trips that must preserve behaviour exactly.

use cardest::cluster::segmentation::{Segmentation, SegmentationConfig, SegmentationMethod};
use cardest::prelude::*;

#[test]
fn vector_data_roundtrips_both_layouts() {
    let spec = DatasetSpec {
        n_data: 120,
        ..PaperDataset::ImageNet.spec()
    };
    let binary = spec.generate(1);
    let json = serde_json::to_string(&binary).expect("serialize binary");
    let back: VectorData = serde_json::from_str(&json).expect("deserialize binary");
    assert_eq!(binary, back);

    let spec = DatasetSpec {
        n_data: 80,
        ..PaperDataset::GloVe300.spec()
    };
    let dense = spec.generate(2);
    let json = serde_json::to_string(&dense).expect("serialize dense");
    let back: VectorData = serde_json::from_str(&json).expect("deserialize dense");
    assert_eq!(dense, back);
}

#[test]
fn workload_samples_roundtrip() {
    let spec = DatasetSpec {
        n_data: 300,
        n_train_queries: 20,
        n_test_queries: 5,
        ..PaperDataset::ImageNet.spec()
    };
    let data = spec.generate(3);
    let w = SearchWorkload::build(&data, &spec, 3);
    let json = serde_json::to_string(&w.train).expect("serialize samples");
    let back: Vec<SearchSample> = serde_json::from_str(&json).expect("deserialize samples");
    assert_eq!(w.train, back);

    let j = JoinWorkload::build(&w, 5, 2, 3);
    let json = serde_json::to_string(&j.train).expect("serialize join sets");
    let back: Vec<JoinSet> = serde_json::from_str(&json).expect("deserialize join sets");
    assert_eq!(j.train, back);
}

#[test]
fn segmentation_roundtrip_preserves_routing() {
    let spec = DatasetSpec {
        n_data: 400,
        ..PaperDataset::ImageNet.spec()
    };
    let data = spec.generate(4);
    let seg = Segmentation::fit(
        &data,
        spec.metric,
        &SegmentationConfig {
            n_segments: 6,
            method: SegmentationMethod::PcaKMeans,
            seed: 4,
            ..Default::default()
        },
    );
    let json = serde_json::to_string(&seg).expect("serialize segmentation");
    let back: Segmentation = serde_json::from_str(&json).expect("deserialize segmentation");
    assert_eq!(seg.assignment(), back.assignment());
    for i in (0..data.len()).step_by(37) {
        assert_eq!(
            seg.nearest_segment(data.view(i)),
            back.nearest_segment(data.view(i))
        );
        assert_eq!(
            seg.centroid_distances(data.view(i)),
            back.centroid_distances(data.view(i))
        );
    }
}

#[test]
fn metric_and_spec_roundtrip() {
    for spec in paper_datasets() {
        let json = serde_json::to_string(&spec).expect("serialize spec");
        let back: DatasetSpec = serde_json::from_str(&json).expect("deserialize spec");
        assert_eq!(spec.metric, back.metric);
        assert_eq!(spec.dim, back.dim);
        assert_eq!(spec.tau_max, back.tau_max);
    }
}

#[test]
fn trained_layers_roundtrip_with_fresh_caches() {
    use cardest::nn::layers::{Dense, Layer};
    use cardest::nn::{Activation, Matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(5);
    let mut layer = Layer::Dense(Dense::new(&mut rng, 6, 4, Activation::Relu));
    let x = Matrix::from_row(&[0.1, -0.2, 0.3, 0.4, -0.5, 0.6]);
    let y_before = layer.forward(&x);
    // Round-trip mid-life: caches are skipped, parameters preserved.
    let json = serde_json::to_string(&layer).expect("serialize layer");
    let mut back: Layer = serde_json::from_str(&json).expect("deserialize layer");
    let y_after = back.forward(&x);
    assert_eq!(y_before, y_after);
}
