//! Fault-injection suite: every failure mode a serving system actually
//! meets must surface as a typed error or a recorded fallback — never as
//! a panic, a NaN, or a silently wrong artifact load.
//!
//! Faults are manufactured deterministically by `cardest_nn::faults`
//! (seeded), so a failing run replays exactly. ci.sh runs this file as
//! its own lane: a panic anywhere here is unambiguously a robustness
//! regression.

use cardest::prelude::*;
use cardest_nn::faults;
use std::path::PathBuf;
use std::sync::OnceLock;

/// One small dense-metric workload plus a trained model of every
/// artifact-capable kind, shared (inference is `&self`) by all tests.
struct Fixture {
    w: SearchWorkload,
    n_data: usize,
    tau_max: f32,
    mlp: MlpEstimator,
    cardnet: CardNet,
    gl_cnn: GlEstimator,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let spec = DatasetSpec {
            n_data: 400,
            n_train_queries: 24,
            n_test_queries: 8,
            ..PaperDataset::GloVe300.spec()
        };
        let data = spec.generate(23);
        let w = SearchWorkload::build(&data, &spec, 23);
        let training = TrainingSet::new(&w.queries, &w.train);
        let mut mlp_cfg = MlpConfig {
            k_samples: 8,
            ..Default::default()
        };
        mlp_cfg.train.epochs = 2;
        let (mlp, _) = MlpEstimator::train(&data, spec.metric, &training, &mlp_cfg, 23);
        let mut cn_cfg = CardNetConfig::default();
        cn_cfg.train.epochs = 2;
        let (cardnet, _) = CardNet::train(&training, spec.tau_max, &cn_cfg, 23);
        let mut gl_cfg = GlConfig::for_variant(GlVariant::GlCnn);
        gl_cfg.n_segments = 4;
        gl_cfg.local_train.epochs = 3;
        gl_cfg.global_train.epochs = 3;
        gl_cfg.tuning = cardest::core::tuning::TuningConfig::fast();
        gl_cfg.tuning_segments = 1;
        let gl_cnn = GlEstimator::train(&data, spec.metric, &training, &w.table, &gl_cfg);
        Fixture {
            w,
            n_data: spec.n_data,
            tau_max: spec.tau_max,
            mlp,
            cardnet,
            gl_cnn,
        }
    })
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cardest-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The fixture's test batch.
fn test_batch(w: &SearchWorkload) -> Vec<(VectorView<'_>, f32)> {
    w.test
        .iter()
        .map(|s| (w.queries.view(s.query), s.tau))
        .collect()
}

// ---------- artifact round-trips ----------

/// Save → load → `estimate_batch` is bit-identical for every
/// artifact-capable estimator (finite f32s survive the JSON payload
/// losslessly, and the container adds no transformation of its own).
#[test]
fn artifact_roundtrip_is_bit_identical() {
    let f = fixture();
    let dir = tmpdir("roundtrip");
    let batch = test_batch(&f.w);

    let p = dir.join("mlp.cardest");
    f.mlp.save_artifact(&p).expect("save mlp");
    let mlp2 = MlpEstimator::load_artifact(&p).expect("load mlp");
    assert_eq!(f.mlp.estimate_batch(&batch), mlp2.estimate_batch(&batch));

    let p = dir.join("cardnet.cardest");
    f.cardnet.save_artifact(&p).expect("save cardnet");
    let cn2 = CardNet::load_artifact(&p).expect("load cardnet");
    assert_eq!(f.cardnet.estimate_batch(&batch), cn2.estimate_batch(&batch));

    let p = dir.join("gl.cardest");
    f.gl_cnn.save_artifact(&p).expect("save gl");
    let gl2 = GlEstimator::load_artifact(&p).expect("load gl");
    assert_eq!(f.gl_cnn.estimate_batch(&batch), gl2.estimate_batch(&batch));

    // Guard metadata survives the round-trip too.
    assert_eq!(f.mlp.expected_dim(), mlp2.expected_dim());
    assert_eq!(f.mlp.tau_bound(), mlp2.tau_bound());
    assert_eq!(f.gl_cnn.tau_bound(), gl2.tau_bound());

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------- corrupted artifacts ----------

/// Truncation at any point — empty file, mid-header, mid-payload, one
/// byte short — loads as a typed error, never a panic or a partial model.
#[test]
fn truncated_artifact_is_rejected() {
    let f = fixture();
    let dir = tmpdir("truncate");
    let p = dir.join("mlp.cardest");
    f.mlp.save_artifact(&p).expect("save");
    let bytes = std::fs::read(&p).expect("read");
    for keep in [0, 4, 8, 12, 20, bytes.len() / 2, bytes.len() - 1] {
        let cut = dir.join(format!("cut-{keep}.cardest"));
        std::fs::write(&cut, faults::truncate(&bytes, keep)).expect("write");
        let Err(err) = MlpEstimator::load_artifact(&cut) else {
            panic!("keep={keep}: truncated file must not load");
        };
        assert!(
            matches!(
                err,
                ArtifactError::Truncated { .. }
                    | ArtifactError::BadMagic
                    | ArtifactError::ChecksumMismatch { .. }
                    | ArtifactError::Malformed(_)
            ),
            "keep={keep}: unexpected error {err}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Payload bit-flips are caught by the FNV checksum before the payload is
/// ever parsed.
#[test]
fn bit_flipped_artifact_is_rejected() {
    let f = fixture();
    let dir = tmpdir("bitflip");
    let p = dir.join("cardnet.cardest");
    f.cardnet.save_artifact(&p).expect("save");
    let clean = std::fs::read(&p).expect("read");
    // The container header is magic(8) + version(4) + kind-len(4) + kind +
    // payload-len(8) + checksum(8); flipping strictly inside the payload
    // region isolates the checksum check.
    let kind_len = u32::from_le_bytes([clean[12], clean[13], clean[14], clean[15]]) as usize;
    let payload_start = 16 + kind_len + 8 + 8;
    for seed in 0..5u64 {
        let mut bytes = clean.clone();
        faults::flip_bits(&mut bytes[payload_start..], seed, 3);
        let flipped = dir.join(format!("flip-{seed}.cardest"));
        std::fs::write(&flipped, &bytes).expect("write");
        let Err(err) = CardNet::load_artifact(&flipped) else {
            panic!("seed={seed}: bit-flipped file must not load");
        };
        assert!(
            matches!(err, ArtifactError::ChecksumMismatch { .. }),
            "seed={seed}: expected ChecksumMismatch, got {err}"
        );
    }
    // Flips anywhere in the file (header included) still yield typed
    // errors, whatever layer breaks first.
    for seed in 5..10u64 {
        let mut bytes = clean.clone();
        faults::flip_bits(&mut bytes, seed, 3);
        let flipped = dir.join(format!("flip-any-{seed}.cardest"));
        std::fs::write(&flipped, &bytes).expect("write");
        assert!(CardNet::load_artifact(&flipped).is_err());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A future format version is refused up front with both versions named,
/// not parsed on a guess.
#[test]
fn version_skewed_artifact_is_rejected() {
    let f = fixture();
    let dir = tmpdir("version");
    let p = dir.join("gl.cardest");
    f.gl_cnn.save_artifact(&p).expect("save");
    let mut bytes = std::fs::read(&p).expect("read");
    faults::skew_version(&mut bytes, 99);
    std::fs::write(&p, &bytes).expect("write");
    match GlEstimator::load_artifact(&p) {
        Err(ArtifactError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 99);
            assert_eq!(supported, cardest_nn::artifact::FORMAT_VERSION);
        }
        Err(other) => panic!("expected UnsupportedVersion, got {other}"),
        Ok(_) => panic!("version-skewed file must not load"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Loading an artifact of the wrong model kind is a `KindMismatch`, not a
/// JSON parse error deep inside the wrong deserializer.
#[test]
fn wrong_kind_artifact_is_rejected() {
    let f = fixture();
    let dir = tmpdir("kind");
    let p = dir.join("model.cardest");
    f.mlp.save_artifact(&p).expect("save");
    let Err(err) = CardNet::load_artifact(&p) else {
        panic!("kind mismatch must not load");
    };
    assert!(
        matches!(err, ArtifactError::KindMismatch { .. }),
        "expected KindMismatch, got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------- poisoned weights ----------

/// NaN-poisoned weights must never panic or leak a non-finite estimate:
/// the shared `decode_log_card` clamp absorbs NaN network outputs, and
/// the guarded wrapper keeps every served value in `[0, |D|]`.
#[test]
fn nan_poisoned_weights_never_panic_and_stay_finite() {
    let f = fixture();
    let spec = DatasetSpec {
        n_data: 400,
        n_train_queries: 24,
        n_test_queries: 8,
        ..PaperDataset::GloVe300.spec()
    };
    let data = spec.generate(23);
    let training = TrainingSet::new(&f.w.queries, &f.w.train);
    let mut cfg = QesConfig::default();
    cfg.train.epochs = 2;
    cfg.k_samples = 8;
    let (mut qes, _) = QesEstimator::train(&data, spec.metric, &training, &cfg, 23);
    let poisoned = faults::poison_params_nan(&mut qes.net_mut().params_mut(), 77, 25);
    assert!(poisoned > 0, "fixture must actually be poisoned");

    for s in &f.w.test {
        let e = qes.estimate(f.w.queries.view(s.query), s.tau);
        assert!(
            e.is_finite() && e >= 0.0,
            "poisoned weights leaked estimate {e}"
        );
    }

    // Behind the wrapper, serving stays inside [0, |D|] and every query
    // is answered (poison degrades accuracy, not availability).
    let fallback = SamplingEstimator::with_ratio(&data, spec.metric, 0.05, 23, "Sampling (5%)");
    let guarded = GuardedEstimator::new(qes, fallback, f.n_data);
    for s in &f.w.test {
        let e = guarded
            .serve(f.w.queries.view(s.query), s.tau)
            .expect("valid query must be served");
        assert!((0.0..=f.n_data as f32).contains(&e));
    }
    assert_eq!(guarded.stats().served, f.w.test.len());
    assert_eq!(guarded.stats().rejected, 0);
}

// ---------- malformed queries ----------

/// Seeded query corruption (NaN/±∞ components) is rejected with the
/// matching typed error by `try_estimate`, and recorded — not panicked
/// on — by the guarded wrapper.
#[test]
fn malformed_queries_surface_typed_errors_not_panics() {
    let f = fixture();
    let dim = f.mlp.expected_dim().expect("MLP knows its dim");
    let tau = f.mlp.tau_bound().expect("MLP advertises a tau bound") * 0.5;
    let mut rejected = 0usize;
    for seed in 0..16u64 {
        let mut q = vec![0.25f32; dim];
        let at = faults::corrupt_query(&mut q, seed);
        match f.mlp.try_estimate(VectorView::Dense(&q), tau) {
            Err(CardestError::NonFiniteQuery {
                index: 0,
                component,
                ..
            }) => {
                assert_eq!(component, at);
                rejected += 1;
            }
            other => panic!("seed={seed}: expected NonFiniteQuery, got {other:?}"),
        }
    }
    assert_eq!(rejected, 16);

    // The full malformed battery against every fixture model: typed
    // errors on the fallible surface, 0.0 (and a rejection counter) on
    // the infallible one — and no panics anywhere.
    let models: [&dyn CardinalityEstimator; 3] = [&f.mlp, &f.cardnet, &f.gl_cnn];
    for est in models {
        let d = est.expected_dim().expect("fixture models know their dim");
        let good = vec![0.25f32; d];
        let wrong_dim = vec![0.25f32; d + 3];
        assert!(matches!(
            est.try_estimate(VectorView::Dense(&wrong_dim), tau),
            Err(CardestError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            est.try_estimate(VectorView::Dense(&good), f32::NAN),
            Err(CardestError::NonFiniteTau { .. })
        ));
        assert!(matches!(
            est.try_estimate(VectorView::Dense(&good), -0.5),
            Err(CardestError::NegativeTau { .. })
        ));
        assert!(matches!(
            est.try_estimate(VectorView::Dense(&good), f.tau_max * 50.0),
            Err(CardestError::TauOutOfRange { .. })
        ));
    }
}

/// The guarded wrapper turns the same malformed battery into counters:
/// unrecoverable inputs are rejected, out-of-range thresholds fall back,
/// and clean traffic is untouched — all through one shared wrapper.
#[test]
fn guarded_wrapper_records_rejections_and_fallbacks() {
    let f = fixture();
    let spec = DatasetSpec {
        n_data: 400,
        n_train_queries: 24,
        n_test_queries: 8,
        ..PaperDataset::GloVe300.spec()
    };
    let data = spec.generate(23);
    let fallback = SamplingEstimator::with_ratio(&data, spec.metric, 0.05, 23, "Sampling (5%)");
    let guarded = GuardedEstimator::new(f.mlp.clone(), fallback, f.n_data);
    let dim = f.mlp.expected_dim().expect("MLP knows its dim");
    let bound = f.mlp.tau_bound().expect("MLP advertises a tau bound");
    let tau = bound * 0.5;
    let good = vec![0.25f32; dim];
    let mut bad = good.clone();
    bad[3] = f32::NAN;

    // Clean traffic serves.
    assert!(guarded.serve(VectorView::Dense(&good), tau).is_ok());
    // Unrecoverable: NaN component → typed error + rejected counter.
    assert!(matches!(
        guarded.serve(VectorView::Dense(&bad), tau),
        Err(CardestError::NonFiniteQuery { .. })
    ));
    // Recoverable: τ beyond the primary's trained range → fallback answer.
    let e = guarded
        .serve(VectorView::Dense(&good), bound * 2.0)
        .expect("out-of-range tau must fall back, not fail");
    assert!((0.0..=f.n_data as f32).contains(&e));

    let stats = guarded.stats();
    assert_eq!(stats.served, 2);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.fallbacks, 1);

    // The infallible trait surface maps the rejection to 0.0 instead of
    // panicking (legacy callers keep working).
    assert_eq!(guarded.estimate(VectorView::Dense(&bad), tau), 0.0);
}
