//! Property-based tests (proptest) on the core invariants of the
//! workspace: metric axioms, loss behaviour, error metrics, label
//! partitioning and model monotonicity.

use cardest::prelude::*;
use cardest_nn::loss::{hybrid_loss, minmax_weights};
use proptest::prelude::*;
use std::sync::OnceLock;

// ---------- metric axioms ----------

fn dense_vec(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, dim)
}

proptest! {
    /// §3.2's identity: on unit vectors the cosine distance equals half
    /// the squared Euclidean distance, for arbitrary directions.
    #[test]
    fn cosine_l2_identity_on_unit_vectors(a in dense_vec(8), b in dense_vec(8)) {
        let norm = |v: &[f32]| v.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assume!(norm(&a) > 1e-3 && norm(&b) > 1e-3);
        let ua: Vec<f32> = a.iter().map(|x| x / norm(&a)).collect();
        let ub: Vec<f32> = b.iter().map(|x| x / norm(&b)).collect();
        let cos = Metric::Cosine.distance(VectorView::Dense(&ua), VectorView::Dense(&ub));
        let l2 = Metric::L2.distance(VectorView::Dense(&ua), VectorView::Dense(&ub));
        prop_assert!((cos - l2 * l2 / 2.0).abs() < 2e-3, "cos={cos} l2²/2={}", l2 * l2 / 2.0);
    }

    /// Symmetry and self-distance ≈ 0 for the dense metrics.
    #[test]
    fn dense_metrics_are_symmetric(a in dense_vec(12), b in dense_vec(12)) {
        for m in [Metric::L1, Metric::L2, Metric::Angular] {
            let ab = m.distance(VectorView::Dense(&a), VectorView::Dense(&b));
            let ba = m.distance(VectorView::Dense(&b), VectorView::Dense(&a));
            prop_assert!((ab - ba).abs() <= 1e-5 * ab.abs().max(1.0));
            let aa = m.distance(VectorView::Dense(&a), VectorView::Dense(&a));
            prop_assert!(aa.abs() < 1e-2, "{m:?} self-distance {aa}");
        }
    }

    /// Triangle inequality for L1/L2/Hamming on random binary vectors.
    #[test]
    fn binary_metrics_satisfy_triangle_inequality(
        xs in prop::collection::vec(prop::collection::vec(any::<bool>(), 40), 3)
    ) {
        let mut data = BinaryData::new(40);
        for x in &xs {
            data.push_bools(x);
        }
        let v = |i: usize| VectorView::Binary { words: data.row(i), dim: 40 };
        for m in [Metric::Hamming, Metric::Jaccard] {
            let ab = m.distance(v(0), v(1));
            let bc = m.distance(v(1), v(2));
            let ac = m.distance(v(0), v(2));
            prop_assert!(
                ac <= ab + bc + 1e-5,
                "{m:?}: d(a,c)={ac} > d(a,b)+d(b,c)={}",
                ab + bc
            );
        }
    }

    /// Binary distances are invariant under the dense expansion: the
    /// popcount fast path equals the elementwise generic path.
    #[test]
    fn binary_fast_path_matches_dense_expansion(
        a in prop::collection::vec(any::<bool>(), 70),
        b in prop::collection::vec(any::<bool>(), 70),
    ) {
        let mut data = BinaryData::new(70);
        data.push_bools(&a);
        data.push_bools(&b);
        let af: Vec<f32> = a.iter().map(|&x| x as u8 as f32).collect();
        let bf: Vec<f32> = b.iter().map(|&x| x as u8 as f32).collect();
        for m in [Metric::Hamming, Metric::Jaccard] {
            let fast = m.distance(
                VectorView::Binary { words: data.row(0), dim: 70 },
                VectorView::Binary { words: data.row(1), dim: 70 },
            );
            let slow = m.distance(VectorView::Dense(&af), VectorView::Dense(&bf));
            prop_assert!((fast - slow).abs() < 1e-5, "{m:?}: {fast} vs {slow}");
        }
    }
}

// ---------- error metrics and losses ----------

proptest! {
    /// Q-error is symmetric, ≥ 1, and exactly 1 on perfect estimates.
    #[test]
    fn q_error_axioms(est in 0.0f32..1e6, truth in 0.0f32..1e6) {
        let q = q_error(est, truth);
        prop_assert!(q >= 1.0);
        prop_assert!((q - q_error(truth, est)).abs() < 1e-3 * q);
        prop_assert!((q_error(truth, truth) - 1.0).abs() < 1e-6);
    }

    /// The hybrid loss pushes the estimate toward the truth: gradient is
    /// positive when overestimating, negative when underestimating.
    #[test]
    fn hybrid_loss_gradient_points_at_truth(card in 1.0f32..10_000.0, off in 0.3f32..3.0) {
        let log_truth = card.ln();
        let (_, g_over) = hybrid_loss(&[log_truth + off], &[card], 0.5);
        let (_, g_under) = hybrid_loss(&[log_truth - off], &[card], 0.5);
        prop_assert!(g_over[0] > 0.0, "overestimate must push down, got {}", g_over[0]);
        prop_assert!(g_under[0] < 0.0, "underestimate must push up, got {}", g_under[0]);
    }

    /// Min-max weights are within [0,1] and hit both bounds when the
    /// input has spread.
    #[test]
    fn minmax_weights_bounds(cards in prop::collection::vec(0.0f32..1e5, 2..20)) {
        let w = minmax_weights(&cards);
        prop_assert!(w.iter().all(|x| (0.0..=1.0).contains(x)));
        let spread = cards.iter().cloned().fold(f32::MIN, f32::max)
            - cards.iter().cloned().fold(f32::MAX, f32::min);
        if spread > 0.0 {
            prop_assert!(w.contains(&0.0) && w.contains(&1.0));
        }
    }

    /// ErrorSummary percentiles are ordered: median ≤ p90 ≤ p95 ≤ p99 ≤ max.
    #[test]
    fn summary_percentiles_are_ordered(errs in prop::collection::vec(1.0f32..1e4, 1..200)) {
        let s = ErrorSummary::from_errors(&errs);
        prop_assert!(s.median <= s.p90 + 1e-6);
        prop_assert!(s.p90 <= s.p95 + 1e-6);
        prop_assert!(s.p95 <= s.p99 + 1e-6);
        prop_assert!(s.p99 <= s.max + 1e-6);
        prop_assert!(s.mean <= s.max + 1e-6);
    }
}

// ---------- ground truth ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exact cardinality is monotone in τ and segment labels always
    /// partition the total, for arbitrary thresholds.
    #[test]
    fn cardinality_is_monotone_and_partitioned(taus in prop::collection::vec(0.0f32..1.0, 1..8)) {
        static CTX: OnceLock<(VectorData, DatasetSpec)> = OnceLock::new();
        let (data, spec) = CTX.get_or_init(|| {
            let spec = DatasetSpec { n_data: 300, ..PaperDataset::ImageNet.spec() };
            (spec.generate(5), spec)
        });
        let queries = data.gather(&[0, 17]);
        let table = cardest::data::ground_truth::DistanceTable::compute(
            &queries, data, spec.metric,
        );
        let seg_of: Vec<usize> = (0..data.len()).map(|i| i % 5).collect();
        let mut sorted = taus.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        for q in 0..2 {
            let mut prev = 0u32;
            for &tau in &sorted {
                let c = table.cardinality(q, tau);
                prop_assert!(c >= prev, "cardinality decreased with tau");
                let segs = table.segment_cardinalities(q, tau, &seg_of, 5);
                prop_assert_eq!(segs.iter().sum::<u32>(), c);
                prev = c;
            }
        }
    }
}

// ---------- batched inference parity ----------

/// A tiny workload plus one trained estimator of every batch-capable kind,
/// shared (immutably — inference is `&self`) by the parity properties.
struct BatchedModels {
    w: SearchWorkload,
    tau_max: f32,
    mlp: MlpEstimator,
    cardnet: CardNet,
    gl_cnn: GlEstimator,
    gl_plus: GlEstimator,
    sampling: SamplingEstimator,
    kernel: KernelEstimator,
    histogram: HistogramEstimator,
}

fn batched_models() -> &'static BatchedModels {
    static MODELS: OnceLock<BatchedModels> = OnceLock::new();
    MODELS.get_or_init(|| {
        let spec = DatasetSpec {
            n_data: 500,
            n_train_queries: 40,
            n_test_queries: 10,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(31);
        let w = SearchWorkload::build(&data, &spec, 31);
        let training = TrainingSet::new(&w.queries, &w.train);
        let mut mlp_cfg = MlpConfig {
            k_samples: 16,
            ..Default::default()
        };
        mlp_cfg.train.epochs = 3;
        let (mlp, _) = MlpEstimator::train(&data, spec.metric, &training, &mlp_cfg, 31);
        let mut cn_cfg = CardNetConfig::default();
        cn_cfg.train.epochs = 3;
        let (cardnet, _) = CardNet::train(&training, spec.tau_max, &cn_cfg, 31);
        let gl = |variant| {
            let mut cfg = GlConfig::for_variant(variant);
            cfg.n_segments = 5;
            cfg.local_train.epochs = 4;
            cfg.global_train.epochs = 4;
            cfg.tuning = cardest::core::tuning::TuningConfig::fast();
            cfg.tuning_segments = 1;
            GlEstimator::train(&data, spec.metric, &training, &w.table, &cfg)
        };
        let gl_cnn = gl(GlVariant::GlCnn);
        let gl_plus = gl(GlVariant::GlPlus);
        let sampling = SamplingEstimator::with_ratio(&data, spec.metric, 0.1, 31, "Sampling (10%)");
        let kernel = KernelEstimator::new(&data, spec.metric, 0.1, 31);
        let histogram = HistogramEstimator::build(&data, spec.metric, 2000, 31);
        BatchedModels {
            w,
            tau_max: spec.tau_max,
            mlp,
            cardnet,
            gl_cnn,
            gl_plus,
            sampling,
            kernel,
            histogram,
        }
    })
}

/// The `estimate_batch` contract: batched and one-at-a-time estimates
/// agree within 1e-5 relative error for any batch composition.
fn assert_batch_parity(
    est: &dyn CardinalityEstimator,
    w: &SearchWorkload,
    picks: &[(usize, f32)],
) -> Result<(), TestCaseError> {
    let queries: Vec<(VectorView<'_>, f32)> = picks
        .iter()
        .map(|&(q, tau)| (w.queries.view(q), tau))
        .collect();
    let batched = est.estimate_batch(&queries);
    prop_assert_eq!(batched.len(), picks.len());
    for (b, &(q, tau)) in batched.iter().zip(picks) {
        let seq = est.estimate(w.queries.view(q), tau);
        let tol = 1e-5 * seq.abs().max(1.0);
        prop_assert!(
            (b - seq).abs() <= tol,
            "{}: batch={} sequential={} at q={} tau={}",
            est.name(),
            b,
            seq,
            q,
            tau
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batched == sequential for every batch-capable estimator, on random
    /// batches mixing duplicate queries and arbitrary thresholds.
    #[test]
    fn estimate_batch_matches_sequential(
        picks in prop::collection::vec((0usize..50, 0.02f32..1.0), 1..24)
    ) {
        let m = batched_models();
        let picks: Vec<(usize, f32)> =
            picks.iter().map(|&(q, t)| (q, t * m.tau_max)).collect();
        assert_batch_parity(&m.mlp, &m.w, &picks)?;
        assert_batch_parity(&m.cardnet, &m.w, &picks)?;
        assert_batch_parity(&m.gl_cnn, &m.w, &picks)?;
        assert_batch_parity(&m.gl_plus, &m.w, &picks)?;
    }
}

/// Inference is `&self`, so a trained estimator is `Sync`: two scoped
/// threads sharing one model must return identical results (each thread
/// draws from its own thread-local scratch pool).
#[test]
fn shared_estimator_across_threads_returns_identical_results() {
    fn assert_sync<T: Sync>(_: &T) {}
    let m = batched_models();
    assert_sync(&m.gl_plus);
    assert_sync(&m.mlp);
    let queries: Vec<(VectorView<'_>, f32)> =
        m.w.test
            .iter()
            .map(|s| (m.w.queries.view(s.query), s.tau))
            .collect();
    let est = &m.gl_plus;
    let (a, b) = std::thread::scope(|s| {
        let h1 = s.spawn(|| est.estimate_batch(&queries));
        let h2 = s.spawn(|| est.estimate_batch(&queries));
        (h1.join().expect("thread 1"), h2.join().expect("thread 2"))
    });
    assert_eq!(a, b, "two threads sharing one model disagreed");
    // And both agree with the main thread's sequential path.
    for (r, &(q, tau)) in a.iter().zip(&queries) {
        let seq = est.estimate(q, tau);
        assert!(
            (r - seq).abs() <= 1e-5 * seq.abs().max(1.0),
            "threaded batch {r} vs sequential {seq}"
        );
    }
}

// ---------- serving guarantees ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every estimator in the workspace returns a finite, non-negative
    /// estimate for any in-domain query — including thresholds beyond the
    /// trained range, where the learned regressors extrapolate and the
    /// shared `decode_log_card` clamp is the only thing standing between
    /// the caller and ±∞.
    #[test]
    fn every_estimator_is_finite_and_non_negative(q in 0usize..50, t in 0.0f32..2.0) {
        let m = batched_models();
        let tau = t * m.tau_max;
        let ests: [&dyn CardinalityEstimator; 7] = [
            &m.mlp, &m.cardnet, &m.gl_cnn, &m.gl_plus,
            &m.sampling, &m.kernel, &m.histogram,
        ];
        for est in ests {
            let e = est.estimate(m.w.queries.view(q), tau);
            prop_assert!(
                e.is_finite() && e >= 0.0,
                "{}: estimate {e} at q={q} tau={tau}",
                est.name()
            );
        }
    }
}

/// A cheap dense-metric MLP for exercising the `try_estimate` rejection
/// classes (binary views have no per-component scan, so the non-finite
/// component classes need a dense dataset).
fn dense_mlp() -> &'static (MlpEstimator, usize) {
    static MODEL: OnceLock<(MlpEstimator, usize)> = OnceLock::new();
    MODEL.get_or_init(|| {
        let spec = DatasetSpec {
            n_data: 300,
            n_train_queries: 24,
            n_test_queries: 6,
            ..PaperDataset::GloVe300.spec()
        };
        let data = spec.generate(17);
        let w = SearchWorkload::build(&data, &spec, 17);
        let training = TrainingSet::new(&w.queries, &w.train);
        let mut cfg = MlpConfig {
            k_samples: 8,
            ..Default::default()
        };
        cfg.train.epochs = 2;
        let (mlp, _) = MlpEstimator::train(&data, spec.metric, &training, &cfg, 17);
        (mlp, spec.dim)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On clean input `try_estimate` is the identity wrapper: `Ok` with
    /// exactly the infallible path's value.
    #[test]
    fn try_estimate_matches_estimate_on_valid_input(q in dense_vec(64), t in 0.01f32..1.0) {
        let (mlp, _) = dense_mlp();
        let tau = t * mlp.tau_bound().expect("MLP advertises a tau bound");
        prop_assert_eq!(
            mlp.try_estimate(VectorView::Dense(&q), tau),
            Ok(mlp.estimate(VectorView::Dense(&q), tau))
        );
    }

    /// Every malformed-input class is rejected with its matching
    /// `CardestError` variant, for arbitrary otherwise-valid queries:
    /// wrong dimensionality, NaN/±∞ components, non-finite τ, negative τ,
    /// and τ beyond the trained bound.
    #[test]
    fn try_estimate_rejects_every_malformed_class(
        q in dense_vec(64),
        bad_idx in 0usize..64,
        wrong_dim in 1usize..200,
        t in 0.01f32..1.0,
    ) {
        let (mlp, dim) = dense_mlp();
        let bound = mlp.tau_bound().expect("MLP advertises a tau bound");
        let tau = t * bound;

        // Wrong dimensionality (exact-dim inputs are valid, skip those).
        if wrong_dim != *dim {
            let resized = vec![0.0f32; wrong_dim];
            prop_assert_eq!(
                mlp.try_estimate(VectorView::Dense(&resized), tau),
                Err(CardestError::DimensionMismatch {
                    index: 0,
                    expected: *dim,
                    got: wrong_dim
                })
            );
        }

        // A NaN/±∞ component anywhere in the vector.
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut poisoned = q.clone();
            poisoned[bad_idx] = bad;
            match mlp.try_estimate(VectorView::Dense(&poisoned), tau) {
                Err(CardestError::NonFiniteQuery { index: 0, component, value }) => {
                    prop_assert_eq!(component, bad_idx);
                    prop_assert_eq!(value.is_nan(), bad.is_nan());
                }
                other => prop_assert!(false, "expected NonFiniteQuery, got {other:?}"),
            }
        }

        // Non-finite τ (NaN equality is always false, so match the shape).
        prop_assert!(matches!(
            mlp.try_estimate(VectorView::Dense(&q), f32::NAN),
            Err(CardestError::NonFiniteTau { index: 0, .. })
        ));
        prop_assert!(matches!(
            mlp.try_estimate(VectorView::Dense(&q), f32::INFINITY),
            Err(CardestError::NonFiniteTau { index: 0, .. })
        ));

        // Negative τ.
        prop_assert_eq!(
            mlp.try_estimate(VectorView::Dense(&q), -tau.max(1e-3)),
            Err(CardestError::NegativeTau { index: 0, tau: -tau.max(1e-3) })
        );

        // τ beyond the trained bound.
        let over = bound * (1.0 + t);
        prop_assert_eq!(
            mlp.try_estimate(VectorView::Dense(&q), over),
            Err(CardestError::TauOutOfRange { index: 0, tau: over, bound })
        );
    }

    /// `try_estimate_batch` pinpoints the offending entry: one malformed
    /// entry at an arbitrary position fails the batch with that position
    /// in the error.
    #[test]
    fn try_estimate_batch_reports_offending_index(
        k in 1usize..8,
        pick in 0usize..8,
        t in 0.01f32..1.0,
    ) {
        let (mlp, dim) = dense_mlp();
        let tau = t * mlp.tau_bound().expect("MLP advertises a tau bound");
        let at = pick % k;
        let rows: Vec<Vec<f32>> = (0..k)
            .map(|j| vec![0.1f32; if j == at { *dim + 1 } else { *dim }])
            .collect();
        let entries: Vec<(VectorView<'_>, f32)> =
            rows.iter().map(|r| (VectorView::Dense(r), tau)).collect();
        match mlp.try_estimate_batch(&entries) {
            Err(e) => {
                prop_assert_eq!(e.batch_index(), at);
                prop_assert!(matches!(e, CardestError::DimensionMismatch { .. }));
            }
            Ok(_) => prop_assert!(false, "malformed batch entry must fail the batch"),
        }
    }
}

// ---------- compute kernels ----------

/// Deterministic matrix fill with negatives and exact zeros (zeros
/// exercise the reference path's historical zero-coefficient skip).
fn seeded_matrix(rows: usize, cols: usize, seed: u64) -> cardest_nn::tensor::Matrix {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let data = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((state >> 33) as i32 % 1000) as f32 / 250.0 - 2.0;
            if v.abs() < 0.05 {
                0.0
            } else {
                v
            }
        })
        .collect();
    cardest_nn::tensor::Matrix::from_vec(rows, cols, data)
}

fn assert_matrix_close(
    got: &cardest_nn::tensor::Matrix,
    want: &cardest_nn::tensor::Matrix,
    what: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!((got.rows(), got.cols()), (want.rows(), want.cols()));
    for r in 0..got.rows() {
        for c in 0..got.cols() {
            let (g, w) = (got.get(r, c), want.get(r, c));
            prop_assert!(
                (g - w).abs() <= 1e-5 * w.abs().max(1.0),
                "{what} ({r},{c}): blocked {g} vs reference {w}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The register-blocked GEMM agrees with the scalar reference within
    /// 1e-5 on arbitrary shapes — including the 1×1 degenerate case and
    /// every micro-tile tail combination the range sweeps through.
    #[test]
    fn blocked_gemm_matches_scalar_reference(
        rows in 1usize..34,
        k in 1usize..40,
        n in 1usize..34,
        seed in any::<usize>(),
    ) {
        use cardest_nn::gemm;
        let seed = seed as u64;
        let a = seeded_matrix(rows, k, seed);
        let bt = seeded_matrix(n, k, seed ^ 0xA5A5);
        let mut nt = cardest_nn::tensor::Matrix::zeros(rows, n);
        a.matmul_nt_into(&bt, &mut nt);
        assert_matrix_close(&nt, &gemm::reference::matmul_nt(&a, &bt), "nt")?;

        let b2 = seeded_matrix(rows, n, seed ^ 0x5A5A);
        assert_matrix_close(&a.matmul_tn(&b2), &gemm::reference::matmul_tn(&a, &b2), "tn")?;

        let b3 = seeded_matrix(k, n, seed ^ 0x0F0F);
        assert_matrix_close(&a.matmul_nn(&b3), &gemm::reference::matmul_nn(&a, &b3), "nn")?;
    }

    /// Zero-extent operands are handled without panicking and produce
    /// empty (or zero-filled) outputs identical to the reference.
    #[test]
    fn blocked_gemm_handles_zero_extents(rows in 0usize..3, k in 0usize..3, n in 0usize..3) {
        use cardest_nn::gemm;
        let a = seeded_matrix(rows, k, 7);
        let bt = seeded_matrix(n, k, 8);
        let mut nt = cardest_nn::tensor::Matrix::zeros(rows, n);
        a.matmul_nt_into(&bt, &mut nt);
        assert_matrix_close(&nt, &gemm::reference::matmul_nt(&a, &bt), "nt")?;
    }

    /// `distance_many` equals per-pair `distance` for every metric on
    /// dense data — exactly, since both run the same monomorphized kernel
    /// per row.
    #[test]
    fn distance_many_matches_singles_dense(
        dim in 1usize..40,
        flat in prop::collection::vec(-4.0f32..4.0, 1..600),
        qseed in any::<usize>(),
    ) {
        let n = (flat.len() / dim).max(1);
        let mut flat = flat;
        flat.resize(n * dim, 0.5);
        let data = VectorData::Dense(DenseData::from_flat(dim, flat));
        let q = seeded_matrix(1, dim, qseed as u64);
        let qv = VectorView::Dense(q.row(0));
        for m in cardest::data::metric::ALL_METRICS {
            let batch = m.distance_many(qv, &data);
            prop_assert_eq!(batch.len(), n);
            for (i, &d) in batch.iter().enumerate() {
                prop_assert_eq!(d, m.distance(qv, data.view(i)), "{:?} row {}", m, i);
            }
        }
    }

    /// Same parity on binary data, through the popcount kernels.
    #[test]
    fn distance_many_matches_singles_binary(
        dim in 1usize..130,
        rows in prop::collection::vec(prop::collection::vec(any::<bool>(), 0..130), 1..12),
        q in prop::collection::vec(any::<bool>(), 130),
    ) {
        let mut bits = BinaryData::new(dim);
        for r in &rows {
            let mut r = r.clone();
            r.resize(dim, false);
            bits.push_bools(&r);
        }
        let n = rows.len();
        let mut qrow = BinaryData::new(dim);
        qrow.push_bools(&q[..dim]);
        let data = VectorData::Binary(bits);
        let qv = VectorView::Binary { words: qrow.row(0), dim };
        for m in cardest::data::metric::ALL_METRICS {
            let batch = m.distance_many(qv, &data);
            prop_assert_eq!(batch.len(), n);
            for (i, &d) in batch.iter().enumerate() {
                prop_assert_eq!(d, m.distance(qv, data.view(i)), "{:?} row {}", m, i);
            }
        }
    }
}

// ---------- learned-model monotonicity ----------

/// CardNet's prefix-sum construction is monotone in τ for *any* query and
/// *any* τ pair — checked against a model trained once.
#[test]
fn cardnet_monotonicity_property() {
    static MODEL: OnceLock<(std::sync::Mutex<CardNet>, SearchWorkload, f32)> = OnceLock::new();
    let (model, w, tau_max) = MODEL.get_or_init(|| {
        let spec = DatasetSpec {
            n_data: 500,
            n_train_queries: 40,
            n_test_queries: 10,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(9);
        let w = SearchWorkload::build(&data, &spec, 9);
        let training = TrainingSet::new(&w.queries, &w.train);
        let mut cfg = CardNetConfig::default();
        cfg.train.epochs = 4;
        let (net, _) = CardNet::train(&training, spec.tau_max, &cfg, 9);
        (std::sync::Mutex::new(net), w, spec.tau_max)
    });
    let mut runner = proptest::test_runner::TestRunner::default();
    runner
        .run(&(0usize..40, 0.0f32..1.0, 0.0f32..1.0), |(q, t1, t2)| {
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            let net = model.lock().expect("no poisoning");
            let e_lo = net.estimate(w.queries.view(q), lo * tau_max);
            let e_hi = net.estimate(w.queries.view(q), hi * tau_max);
            prop_assert!(
                e_hi >= e_lo - 1e-4,
                "CardNet not monotone: q={q} {e_lo} @ {lo} vs {e_hi} @ {hi}"
            );
            Ok(())
        })
        .expect("monotonicity property holds");
}
