//! End-to-end online ingestion (ISSUE 7 tentpole): inserts over HTTP
//! under concurrent estimate load, a crash manufactured by tearing the
//! WAL tail, recovery that must be bit-identical to snapshot + replay of
//! the surviving prefix, and a restarted server whose estimates answer
//! without a single guard fallback.

use cardest_baselines::sampling::SamplingEstimator;
use cardest_baselines::traits::{CardinalityEstimator, TrainingSet};
use cardest_core::drift::DriftConfig;
use cardest_core::gl::{GlConfig, GlEstimator, GlVariant};
use cardest_core::tuning::TuningConfig;
use cardest_core::update::{UpdatableGl, UpdateConfig};
use cardest_data::metric::Metric;
use cardest_data::paper::{DatasetSpec, PaperDataset};
use cardest_data::vector::VectorView;
use cardest_data::workload::SearchWorkload;
use cardest_nn::metrics::q_error;
use cardest_nn::trainer::TrainConfig;
use cardest_server::client::HttpClient;
use cardest_server::model::QueryRepr;
use cardest_server::registry::SharedFallback;
use cardest_server::{IngestService, ModelRegistry, RegistryConfig, Server, ServerConfig};
use cardest_store::ingest::{apply_record, SNAPSHOT_FILE, WAL_FILE};
use cardest_store::{read_snapshot, scan, DurableIngest, StoreConfig};
use serde::Value;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const N_DATA: usize = 400;
const DIM: usize = 16;
const INSERT_THREADS: usize = 3;
const INSERTS_PER_THREAD: usize = 20;
const TOTAL_INSERTS: usize = INSERT_THREADS * INSERTS_PER_THREAD;

fn spec() -> DatasetSpec {
    DatasetSpec {
        dataset: PaperDataset::GloVe300,
        dim: DIM,
        n_data: N_DATA,
        n_train_queries: 30,
        n_test_queries: 10,
        metric: Metric::Angular,
        tau_max: 0.6,
    }
}

/// Trains the tiny GL stack and wraps it for updates. Deterministic in
/// the seed, so two calls build bit-identical estimators.
fn build_updatable(seed: u64) -> UpdatableGl {
    let spec = spec();
    let data = spec.generate(seed);
    let w = SearchWorkload::build(&data, &spec, seed);
    let cfg = GlConfig {
        variant: GlVariant::GlCnn,
        n_segments: 4,
        local_train: TrainConfig {
            epochs: 3,
            batch_size: 64,
            ..Default::default()
        },
        global_train: TrainConfig {
            epochs: 4,
            batch_size: 64,
            ..Default::default()
        },
        tuning: TuningConfig::fast(),
        tuning_segments: 1,
        ..Default::default()
    };
    let training = TrainingSet::new(&w.queries, &w.train);
    let gl = GlEstimator::train(&data, spec.metric, &training, &w.table, &cfg);
    UpdatableGl::new(
        data,
        spec.metric,
        gl,
        w.queries,
        w.train,
        w.test,
        &w.table,
        UpdateConfig::default(),
    )
}

fn dense_row(upd: &UpdatableGl, data_row: usize) -> Vec<f32> {
    match upd.data().view(data_row) {
        VectorView::Dense(row) => row.to_vec(),
        other => panic!("spec is dense, got {other:?}"),
    }
}

fn registry_for(model_path: &Path, upd: &UpdatableGl, n_data: usize) -> Arc<ModelRegistry> {
    let fallback: SharedFallback = Arc::new(SamplingEstimator::with_ratio(
        upd.data(),
        Metric::Angular,
        0.05,
        9,
        "Sampling 5%",
    ));
    Arc::new(
        ModelRegistry::new(
            RegistryConfig {
                n_data,
                dim: DIM,
                repr: QueryRepr::Dense,
                monotone: true,
            },
            fallback,
            model_path,
        )
        .unwrap(),
    )
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Map(m) => {
            &m.iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("missing field {key:?} in {v:?}"))
                .1
        }
        other => panic!("expected map, got {other:?}"),
    }
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::UInt(u) => *u,
        Value::Int(i) if *i >= 0 => *i as u64,
        other => panic!("expected unsigned integer, got {other:?}"),
    }
}

fn json_point(point: &[f32]) -> String {
    let comps: Vec<String> = point.iter().map(|v| format!("{v}")).collect();
    format!("{{\"point\":[{}]}}", comps.join(","))
}

#[test]
fn insert_under_load_crash_recover_and_serve() {
    let dir = std::env::temp_dir().join(format!("cardest-e2e-ingest-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let store_dir: PathBuf = dir.join("store");
    let model_path = dir.join("model.cardest");

    // --- phase 1: serve + ingest under concurrent load ---
    let upd = build_updatable(9);
    upd.gl().save_artifact(&model_path).unwrap();
    // Vectors each insert thread will push (duplicates of existing rows —
    // valid points with known distances), and estimate queries.
    let insert_vecs: Vec<Vec<f32>> = (0..TOTAL_INSERTS)
        .map(|i| dense_row(&upd, (i * 7) % N_DATA))
        .collect();
    let probe = upd.test_samples()[0];
    let probe_query = match upd.queries().view(probe.query) {
        VectorView::Dense(row) => row.to_vec(),
        other => panic!("spec is dense, got {other:?}"),
    };
    let registry = registry_for(&model_path, &upd, N_DATA);

    // retain_wal + no auto-snapshot: every insert stays in the WAL, so
    // the manufactured crash has the longest possible tail to tear.
    let store = DurableIngest::create(
        &store_dir,
        upd,
        StoreConfig {
            snapshot_every: 0,
            sync_writes: false,
            retain_wal: true,
            rotate_bytes: 0,
        },
    )
    .unwrap();
    let svc = IngestService::new(
        store,
        DriftConfig {
            check_every: 10_000, // drift out of the picture: exact state
            ..Default::default()
        },
        dir.join("model_tuned.cardest"),
    );
    let handle = Server::start_with_ingest(
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
        registry,
        svc,
    )
    .unwrap();
    let addr = handle.addr();

    let inserters: Vec<_> = (0..INSERT_THREADS)
        .map(|t| {
            let vecs: Vec<Vec<f32>> =
                insert_vecs[t * INSERTS_PER_THREAD..(t + 1) * INSERTS_PER_THREAD].to_vec();
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr).unwrap();
                for v in &vecs {
                    let r = c.post_json("/insert", &json_point(v)).unwrap();
                    assert_eq!(r.status, 200, "insert failed under load: {}", r.text());
                }
            })
        })
        .collect();
    let estimators: Vec<_> = (0..2)
        .map(|_| {
            let q = probe_query.clone();
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr).unwrap();
                let comps: Vec<String> = q.iter().map(|v| format!("{v}")).collect();
                let body = format!("{{\"query\":[{}],\"tau\":0.3}}", comps.join(","));
                for _ in 0..30 {
                    let r = c.post_json("/estimate", &body).unwrap();
                    assert_eq!(r.status, 200, "estimate failed under load: {}", r.text());
                }
            })
        })
        .collect();
    for t in inserters.into_iter().chain(estimators) {
        t.join().unwrap();
    }

    let snap = handle.ingest().unwrap().snapshot();
    assert_eq!(snap.inserts, TOTAL_INSERTS as u64);
    assert_eq!(snap.last_seq, TOTAL_INSERTS as u64);
    assert_eq!(snap.live_rows, (N_DATA + TOTAL_INSERTS) as u64);
    handle.shutdown();

    // --- phase 2: crash — tear the WAL tail mid-record ---
    let wal_path = store_dir.join(WAL_FILE);
    let full = std::fs::read(&wal_path).unwrap();
    let surviving_before_cut = scan(&full).records.len();
    assert_eq!(surviving_before_cut, TOTAL_INSERTS, "WAL lost appends");
    // Keep ~60% of the bytes, nudged off any record boundary.
    let keep = (full.len() * 6 / 10) + 3;
    let torn = cardest_nn::faults::truncate(&full, keep);
    std::fs::write(&wal_path, &torn).unwrap();
    let survivors = scan(&torn).records.len();
    assert!(
        survivors < TOTAL_INSERTS,
        "cut at {keep} of {} left every record intact",
        full.len()
    );

    // --- phase 3: recover, and pin bit-identity vs snapshot + replay ---
    let (store, report) = DurableIngest::open(
        &store_dir,
        StoreConfig {
            snapshot_every: 0,
            sync_writes: false,
            retain_wal: true,
            rotate_bytes: 0,
        },
    )
    .unwrap();
    assert_eq!(report.snapshot_seq, 0);
    assert_eq!(report.replayed, survivors);
    assert!(report.wal.defect.is_some(), "mid-record cut must classify");
    assert_eq!(store.estimator().dataset_len(), N_DATA + survivors);

    // Independent reference: load the on-disk snapshot and replay the
    // torn WAL by hand through the same pure apply path.
    let (snap_seq, state) = read_snapshot(&store_dir.join(SNAPSHOT_FILE)).unwrap();
    assert_eq!(snap_seq, 0);
    let mut reference =
        UpdatableGl::from_snapshot_json(std::str::from_utf8(&state).unwrap()).unwrap();
    for r in &scan(&torn).records {
        apply_record(&mut reference, r.seq, r.kind, &r.payload).unwrap();
    }
    assert_eq!(
        store.fingerprint().unwrap(),
        reference.state_fingerprint().unwrap(),
        "recovered state differs from snapshot + straight replay"
    );

    // Estimate quality survived recovery: the label-patched probes still
    // agree with the model to a sane Q-error.
    let mean_q: f32 = {
        let upd = store.estimator();
        let probes = upd.test_samples();
        let total: f32 = probes
            .iter()
            .map(|s| {
                q_error(
                    upd.gl().estimate(upd.queries().view(s.query), s.tau),
                    s.card,
                )
            })
            .sum();
        total / probes.len() as f32
    };
    assert!(
        mean_q.is_finite() && mean_q < 100.0,
        "post-recovery probe Q-error degenerate: {mean_q}"
    );

    // --- phase 4: restart serving on the recovered store ---
    // Control for the fallback assertion below: how many of the probe
    // taus would the *never-crashed* model (the bit-identical reference)
    // hand to the guard's fallback anyway — τ beyond the trained bound,
    // or a non-finite/negative output from the lightly-trained model.
    let taus = [0.1f32, 0.3, 0.5];
    let expected_fallbacks = taus
        .iter()
        .filter(|&&tau| {
            if reference.gl().tau_bound().is_some_and(|b| tau > b) {
                return true;
            }
            let est = reference
                .gl()
                .estimate(VectorView::Dense(&probe_query), tau);
            !est.is_finite() || est < 0.0
        })
        .count() as u64;

    store.estimator().gl().save_artifact(&model_path).unwrap();
    let registry = registry_for(&model_path, store.estimator(), N_DATA + survivors);
    let svc = IngestService::new(
        store,
        DriftConfig::default(),
        dir.join("model_tuned.cardest"),
    );
    let handle = Server::start_with_ingest(ServerConfig::default(), registry, svc).unwrap();
    let mut c = HttpClient::connect(handle.addr()).unwrap();
    let comps: Vec<String> = probe_query.iter().map(|v| format!("{v}")).collect();
    for tau in taus {
        let body = format!("{{\"query\":[{}],\"tau\":{tau}}}", comps.join(","));
        let r = c.post_json("/estimate", &body).unwrap();
        assert_eq!(r.status, 200, "post-recovery estimate: {}", r.text());
    }
    // Zero guard fallbacks attributable to corruption: the recovered
    // model falls back exactly as often as the never-crashed control —
    // one extra fallback would mean recovery damaged the weights.
    let r = c.get("/stats").unwrap();
    let v: Value = serde_json::from_str(&r.text()).unwrap();
    assert_eq!(
        as_u64(field(field(&v, "guard"), "fallbacks")),
        expected_fallbacks,
        "recovery corrupted the served model: {}",
        r.text()
    );
    assert!(as_u64(field(field(&v, "guard"), "served")) >= 3);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
