//! Determinism tests for the parallel training pipeline: the segment fan
//! over local models and the sharded minibatch gradients must produce
//! bit-identical models for every thread count, and the join fine-tune
//! fan must leave the transferred model equally thread-count independent.

use cardest::prelude::*;
use cardest_nn::trainer::TrainConfig;

fn tiny(seed: u64) -> (DatasetSpec, VectorData, SearchWorkload) {
    let spec = DatasetSpec {
        n_data: 500,
        n_train_queries: 45,
        n_test_queries: 10,
        ..PaperDataset::ImageNet.spec()
    };
    let data = spec.generate(seed);
    let w = SearchWorkload::build(&data, &spec, seed);
    (spec, data, w)
}

fn gl_cfg(threads: usize) -> GlConfig {
    let mut cfg = GlConfig::for_variant(GlVariant::GlMlp);
    cfg.n_segments = 6;
    cfg.local_train = TrainConfig {
        epochs: 3,
        batch_size: 64,
        threads,
        ..Default::default()
    };
    cfg.global_train = TrainConfig {
        epochs: 3,
        batch_size: 64,
        threads,
        ..Default::default()
    };
    cfg
}

/// The GL training pipeline (segment-parallel locals + data-parallel
/// minibatch shards) yields bit-identical serialized models at 1, 2 and
/// 8 threads.
#[test]
fn gl_training_is_thread_count_independent() {
    let (spec, data, w) = tiny(901);
    let training = TrainingSet::new(&w.queries, &w.train);
    let reference = GlEstimator::train(&data, spec.metric, &training, &w.table, &gl_cfg(1))
        .to_json()
        .expect("serialize");
    for threads in [2usize, 8] {
        let got = GlEstimator::train(&data, spec.metric, &training, &w.table, &gl_cfg(threads))
            .to_json()
            .expect("serialize");
        assert!(
            got == reference,
            "GL training diverged at {threads} threads"
        );
    }
}

/// The join fine-tune fan (per-segment forward/backward jobs) leaves the
/// transferred model's estimates bit-identical for every thread count.
#[test]
fn join_finetune_is_thread_count_independent() {
    let (spec, data, w) = tiny(902);
    let j = JoinWorkload::build(&w, 20, 5, 902);
    let training = TrainingSet::new(&w.queries, &w.train);
    let base = GlEstimator::train(&data, spec.metric, &training, &w.table, &gl_cfg(1));

    let estimates = |threads: usize| -> Vec<f32> {
        let mut cfg = JoinConfig::for_variant(JoinVariant::GlJoin);
        cfg.base = gl_cfg(threads);
        let est = JoinEstimator::from_search_model(base.clone(), &w.queries, &j.train, &cfg);
        j.test_buckets[0]
            .iter()
            .map(|s| est.estimate_join_batched(&w.queries, &s.query_ids, s.tau))
            .collect()
    };
    let reference = estimates(1);
    assert!(reference.iter().all(|e| e.is_finite()));
    for threads in [2usize, 8] {
        assert_eq!(
            estimates(threads),
            reference,
            "join fine-tune diverged at {threads} threads"
        );
    }
}
