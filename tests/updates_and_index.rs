//! Integration tests for the incremental-update path (§5.3) and the
//! interplay between the exact index and the learned estimators.

use cardest::prelude::*;
use cardest_nn::trainer::TrainConfig;

fn trained_updatable(seed: u64) -> (UpdatableGl, DatasetSpec) {
    let spec = DatasetSpec {
        n_data: 450,
        n_train_queries: 35,
        n_test_queries: 15,
        ..PaperDataset::GloVe300.spec()
    };
    let data = spec.generate(seed);
    let w = SearchWorkload::build(&data, &spec, seed);
    let mut cfg = GlConfig::for_variant(GlVariant::GlCnn);
    cfg.n_segments = 5;
    cfg.local_train = TrainConfig {
        epochs: 5,
        batch_size: 64,
        ..Default::default()
    };
    cfg.global_train = TrainConfig {
        epochs: 6,
        batch_size: 64,
        ..Default::default()
    };
    let training = TrainingSet::new(&w.queries, &w.train);
    let gl = GlEstimator::train(&data, spec.metric, &training, &w.table, &cfg);
    let all: Vec<usize> = (0..w.queries.len()).collect();
    let upd = UpdatableGl::new(
        data,
        spec.metric,
        gl,
        w.queries.gather(&all),
        w.train,
        w.test,
        &w.table,
        UpdateConfig::default(),
    );
    (upd, spec)
}

/// After inserts, the patched labels must equal a from-scratch recount
/// over the grown dataset.
#[test]
fn patched_labels_match_full_recount() {
    let (mut upd, spec) = trained_updatable(401);
    let inserts = upd.data().gather(&[1, 2, 3, 5, 8, 13]);
    upd.insert(&inserts, false);
    // Recount: distances from each test query to the grown dataset.
    let grown = upd.data().clone();
    for s in upd.test_samples().iter().take(30) {
        // The workload's query collection was cloned into the wrapper, so
        // re-derive the query vector from it.
        let recount = (0..grown.len())
            .filter(|&p| {
                spec.metric
                    .distance(upd_query(&upd, s.query), grown.view(p))
                    <= s.tau
            })
            .count() as f32;
        assert_eq!(s.card, recount, "label drifted for tau={}", s.tau);
    }
}

fn upd_query<'a>(upd: &'a UpdatableGl, q: usize) -> VectorView<'a> {
    upd.queries().view(q)
}

/// Inserting points into the dataset keeps the exact index rebuildable
/// and consistent with brute force on the grown data.
#[test]
fn index_rebuild_after_growth_is_exact() {
    let (mut upd, spec) = trained_updatable(402);
    let inserts = upd.data().gather(&[0, 10, 20, 30]);
    upd.insert(&inserts, false);
    let grown = upd.data().clone();
    let index = PivotIndex::build(&grown, spec.metric, 8, 402);
    for q in [0usize, 50, 100] {
        for tau in [0.1f32, 0.3] {
            let brute = (0..grown.len())
                .filter(|&p| spec.metric.distance(grown.view(q), grown.view(p)) <= tau)
                .count() as u32;
            assert_eq!(index.range_count(&grown, grown.view(q), tau), brute);
        }
    }
}

/// Deletions patch labels downward exactly: after deleting points, each
/// sample's cardinality equals a recount over the live rows.
#[test]
fn deletions_patch_labels_exactly() {
    let (mut upd, spec) = trained_updatable(404);
    let victims = [3usize, 7, 42, 100, 250];
    let before_total = upd.dataset_len();
    let affected = upd.delete(&victims, false);
    assert!(!affected.is_empty());
    assert_eq!(
        upd.dataset_len(),
        before_total,
        "storage keeps tombstoned rows"
    );
    assert_eq!(upd.live_len(), before_total - victims.len());
    for &v in &victims {
        assert!(upd.is_deleted(v));
    }
    // Deleting again is a no-op.
    let again = upd.delete(&victims, false);
    assert!(again.is_empty());
    // Labels match a recount over live rows.
    let grown = upd.data().clone();
    for s in upd.test_samples().iter().take(25) {
        let recount = (0..grown.len())
            .filter(|&p| !upd.is_deleted(p))
            .filter(|&p| {
                spec.metric
                    .distance(upd.queries().view(s.query), grown.view(p))
                    <= s.tau
            })
            .count() as f32;
        assert_eq!(
            s.card, recount,
            "label drifted after delete at tau={}",
            s.tau
        );
    }
}

/// Mixed insert/delete cycles with fine-tuning stay consistent and finite.
#[test]
fn mixed_insert_delete_cycles() {
    let (mut upd, _) = trained_updatable(405);
    let pts = upd.data().gather(&[0, 1, 2]);
    upd.insert(&pts, true);
    upd.delete(&[0, 1], true);
    let err = upd.mean_test_q_error();
    assert!(err.is_finite(), "q-error became {err}");
    assert_eq!(upd.live_len(), upd.dataset_len() - 2);
}

/// Repeated update+finetune cycles never produce NaN estimates and keep
/// the model usable.
#[test]
fn repeated_update_cycles_stay_finite() {
    let (mut upd, _) = trained_updatable(403);
    for i in 0..4 {
        let ids: Vec<usize> = (0..5).map(|k| (i * 31 + k * 7) % 450).collect();
        let pts = upd.data().gather(&ids);
        upd.insert(&pts, true);
        let err = upd.mean_test_q_error();
        assert!(err.is_finite(), "mean Q-error became {err} after cycle {i}");
    }
}
