#!/usr/bin/env sh
# Repository CI gate: formatting, lints, and the full test suite.
# Usage: ./ci.sh  (add CARGO_FLAGS=--offline for air-gapped machines)
set -eu

cargo fmt --all --check
cargo clippy --workspace --all-targets ${CARGO_FLAGS:-} -- -D warnings
cargo test --workspace ${CARGO_FLAGS:-} -q
