#!/usr/bin/env sh
# Repository CI gate: formatting, lints, and the full test suite.
# Usage: ./ci.sh  (add CARGO_FLAGS=--offline for air-gapped machines)
#
# Tests run in two tiers:
#   1. the default suite — fast and deterministic, the per-commit gate;
#   2. the `--ignored` lane — heavyweight configurations (multi-variant /
#      multi-dataset trainings) that pin broader behavior but cost minutes.
set -eu

cargo fmt --all --check
cargo clippy --workspace --all-targets ${CARGO_FLAGS:-} -- -D warnings
cargo test --workspace ${CARGO_FLAGS:-} -q
cargo test --workspace ${CARGO_FLAGS:-} -q -- --ignored
