#!/usr/bin/env sh
# Repository CI gate: formatting, lints, and the full test suite.
# Usage: ./ci.sh  (add CARGO_FLAGS=--offline for air-gapped machines)
#
# Tests run in three tiers:
#   1. the default suite — fast and deterministic, the per-commit gate;
#   2. the fault-injection lane — corrupted artifacts, poisoned weights
#      and malformed queries must surface as typed errors or recorded
#      fallbacks, never as panics (run separately so a panic anywhere in
#      it is unambiguously a robustness regression);
#   3. the `--ignored` lane — heavyweight configurations (multi-variant /
#      multi-dataset trainings) that pin broader behavior but cost minutes.
#
# Library crates carry `#![warn(clippy::unwrap_used, clippy::expect_used)]`
# so the clippy step (with -D warnings) rejects new panic paths in
# non-test library code.
set -eu

cargo fmt --all --check
cargo clippy --workspace --all-targets ${CARGO_FLAGS:-} -- -D warnings
# Benches must keep compiling (they are the perf regression harness),
# but running them is not a CI concern.
cargo bench --workspace ${CARGO_FLAGS:-} --no-run
cargo test --workspace ${CARGO_FLAGS:-} -q
cargo test -p cardest ${CARGO_FLAGS:-} -q --test fault_injection
cargo test --workspace ${CARGO_FLAGS:-} -q -- --ignored
