#!/usr/bin/env sh
# Repository CI gate: formatting, invariant lints, clippy, and the full
# test suite. Usage: ./ci.sh  (add CARGO_FLAGS=--offline for air-gapped
# machines)
#
# Lanes, in order:
#   fmt          rustfmt as a pure check;
#   cardest-lint the workspace invariant checker (crates/lint): the lexical
#                rules (determinism, decode clamping, float total order,
#                panic paths, unsafe hygiene, kernel casts) plus the
#                semantic call-graph pass (--semantic: panic reachability
#                from serving entry points, lock discipline, durability
#                protocol, error taxonomy). Machine-readable JSON on
#                stdout and in LINT_REPORT.json; diagnostics accepted in
#                crates/lint/baseline.txt are subtracted, so the lane is
#                non-zero only on *new* non-allowed findings. Runs before
#                everything heavy because it needs only the
#                zero-dependency lint crate;
#   clippy       -D warnings; clippy.toml's disallowed-methods cross-check
#                the cardest-lint rules from the type-resolved side, and
#                library crates carry clippy::unwrap_used/expect_used;
#   bench-build  benches must keep compiling (perf regression harness),
#                but running them is not a CI concern;
#   test         the default suite — fast and deterministic, the per-commit
#                gate (includes cardest-lint's fixture self-tests and the
#                workspace meta-gate, so the lint gate also fires for
#                contributors who only run `cargo test`);
#   fault        the fault-injection lane — corrupted artifacts, poisoned
#                weights and malformed queries must surface as typed errors
#                or recorded fallbacks, never as panics (run separately so
#                a panic anywhere in it is unambiguously a robustness
#                regression);
#   serve        the estimation-server smoke battery: a real server on an
#                ephemeral port answering estimate / batch / malformed-body
#                400 / hot reload (healthy and corrupt) / stats, plus the
#                `cardest-serve` binary's LISTENING announcement — every
#                wait is deadline-bounded so a wedged server fails rather
#                than hangs. (cardest-lint covers crates/server via the
#                lint lane's recursive `crates` scan.)
#   ingest       the online-ingestion durability battery: WAL framing
#                proptests (torn tails, bit flips, zero-length records),
#                the crash matrix (kill at every byte offset of a live WAL,
#                recover, assert bit-identical state), POST /insert and
#                drift-triggered fine-tune over real HTTP, and the e2e
#                insert-under-load / crash / recover / re-serve test —
#                again deadline-bounded; a hang here is a recovery bug;
#   replicate    the warm-standby lane: replication frame-codec proptests,
#                the network-fault chaos battery (drops, delays, truncated /
#                duplicated frames, bit flips — standby must converge
#                bit-identically), and the HTTP failover e2e (standby 503s
#                writes with Retry-After, /ready gates on lag, promote
#                continues the sequence chain) — every wait is
#                deadline-bounded, so a wedged stream fails, not hangs;
#   heavy        the `--ignored` lane — heavyweight configurations
#                (multi-variant / multi-dataset trainings) that pin broader
#                behavior but cost minutes.
#
# A per-lane wall-clock summary is printed at the end (also on failure, so
# slow lanes stay visible even when a later lane breaks).
set -eu

SUMMARY=""
CURRENT_LANE="(startup)"

print_summary() {
    status=$?
    printf '\n== ci.sh lane timing ==\n'
    printf '%b' "$SUMMARY"
    if [ "$status" -ne 0 ]; then
        printf '%-14s FAILED (exit %s)\n' "$CURRENT_LANE" "$status"
    fi
    exit "$status"
}
trap print_summary EXIT

lane() {
    CURRENT_LANE="$1"
    shift
    printf '== lane: %s ==\n' "$CURRENT_LANE"
    lane_start=$(date +%s)
    "$@"
    lane_end=$(date +%s)
    SUMMARY="${SUMMARY}$(printf '%-14s %4ss' "$CURRENT_LANE" "$((lane_end - lane_start))")\n"
    CURRENT_LANE="(done)"
}

lane fmt          cargo fmt --all --check
lane cardest-lint cargo run -p cardest-lint ${CARGO_FLAGS:-} -- --format=json --semantic \
                      --baseline=crates/lint/baseline.txt --report=LINT_REPORT.json crates
lane clippy       cargo clippy --workspace --all-targets ${CARGO_FLAGS:-} -- -D warnings
lane bench-build  cargo bench --workspace ${CARGO_FLAGS:-} --no-run
lane test         cargo test --workspace ${CARGO_FLAGS:-} -q
lane fault        cargo test -p cardest ${CARGO_FLAGS:-} -q --test fault_injection
lane serve        cargo test -p cardest-server ${CARGO_FLAGS:-} -q --test http_smoke
lane ingest       sh -c "cargo test -p cardest-store ${CARGO_FLAGS:-} -q \
                      && cargo test -p cardest-server ${CARGO_FLAGS:-} -q --test http_ingest \
                      && cargo test -p cardest ${CARGO_FLAGS:-} -q --test online_ingestion"
lane replicate    sh -c "cargo test -p cardest-store ${CARGO_FLAGS:-} -q --test frame_props --test replication_chaos \
                      && cargo test -p cardest-server ${CARGO_FLAGS:-} -q --test http_replication"
lane heavy        cargo test --workspace ${CARGO_FLAGS:-} -q -- --ignored
